"""Generated cluster/grid fabrics: fat-tree and 3-D torus topologies.

The paper's testbeds stop at two hosts and one FastIron chassis; the
"Networks of Workstations, Clusters, and Grids" of its title need
*generated* fabrics: the k-ary fat-tree of datacenter interconnects
(the archgym Summit configs in the related work) and the 3-D torus of
the APENet/PACS-CS LQCD machines.  This module builds those fabrics as
lightweight directed graphs — nodes, capacity/latency-annotated links,
and deterministic shortest-path/ECMP routing — that both the packet
DES (:mod:`repro.net.hybrid`) and the fluid background model
(:class:`repro.tcp.fluid.FluidFabric`) consume.

Routing is *deterministic by construction*: equal-cost next hops are
tie-broken by a CRC-32 of ``(flow id, node, destination)``, so the same
flow id always takes the same path in every process, on every platform
— the property the result cache and the hybrid/DES bit-identity tests
rely on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.units import Gbps

__all__ = ["FabricLinkSpec", "FabricTopology", "build_fat_tree",
           "build_torus3d"]

#: default per-link line rate of a generated fabric (10GbE everywhere,
#: the paper's medium)
DEFAULT_FABRIC_RATE_BPS = Gbps(10)
#: default one-way per-hop latency (short intra-rack fibre + forwarding)
DEFAULT_HOP_DELAY_S = 1e-6
#: default drop-tail output queue per link
DEFAULT_QUEUE_PACKETS = 512


@dataclass(frozen=True)
class FabricLinkSpec:
    """One *directed* fabric link ``src -> dst``."""

    src: str                 # transmitting node
    dst: str                 # receiving node
    rate_bps: float          # line rate
    delay_s: float           # propagation + forwarding latency
    queue_packets: int       # drop-tail output queue at ``src``

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise TopologyError(f"{self.src}->{self.dst}: rate must be positive")
        if self.delay_s < 0:
            raise TopologyError(f"{self.src}->{self.dst}: delay cannot be negative")
        if self.queue_packets < 1:
            raise TopologyError(
                f"{self.src}->{self.dst}: queue must hold at least one packet")


def _ecmp_pick(flow_id: int, node: str, dst: str, n: int) -> int:
    """Deterministic equal-cost tie-break (stable across processes)."""
    key = f"{flow_id}:{node}:{dst}".encode()
    return zlib.crc32(key) % n


@dataclass
class FabricTopology:
    """A directed fabric graph with deterministic ECMP routing.

    ``hosts`` are the traffic endpoints; interior nodes are switches
    (every node of a torus is both).  Links are directed, and
    :meth:`route` returns the link-index path a given flow takes from
    one host to another — always the same path for the same
    ``(src, dst, flow_id)`` triple.
    """

    name: str
    hosts: List[str] = field(default_factory=list)
    switches: List[str] = field(default_factory=list)
    links: List[FabricLinkSpec] = field(default_factory=list)
    _link_index: Dict[Tuple[str, str], int] = field(default_factory=dict)
    _adjacency: Dict[str, List[str]] = field(default_factory=dict)
    _dist_cache: Dict[str, Dict[str, int]] = field(default_factory=dict)

    # -- construction -------------------------------------------------------
    def add_node(self, node: str, host: bool = False) -> None:
        """Register a node; ``host=True`` marks a traffic endpoint."""
        if node in self._adjacency:
            raise TopologyError(f"{self.name}: duplicate node {node!r}")
        self._adjacency[node] = []
        (self.hosts if host else self.switches).append(node)

    def add_link(self, src: str, dst: str,
                 rate_bps: float = DEFAULT_FABRIC_RATE_BPS,
                 delay_s: float = DEFAULT_HOP_DELAY_S,
                 queue_packets: int = DEFAULT_QUEUE_PACKETS) -> int:
        """Add one directed link; returns its index."""
        for node in (src, dst):
            if node not in self._adjacency:
                raise TopologyError(f"{self.name}: unknown node {node!r}")
        if (src, dst) in self._link_index:
            raise TopologyError(f"{self.name}: duplicate link {src}->{dst}")
        spec = FabricLinkSpec(src, dst, rate_bps, delay_s, queue_packets)
        idx = len(self.links)
        self.links.append(spec)
        self._link_index[(src, dst)] = idx
        self._adjacency[src].append(dst)
        self._dist_cache.clear()
        return idx

    def add_duplex(self, a: str, b: str, **kwargs) -> Tuple[int, int]:
        """Two directed links forming a full-duplex cable ``a <-> b``."""
        return self.add_link(a, b, **kwargs), self.add_link(b, a, **kwargs)

    # -- inspection ---------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count (hosts + switches)."""
        return len(self._adjacency)

    @property
    def n_links(self) -> int:
        """Total *directed* link count."""
        return len(self.links)

    def link_id(self, src: str, dst: str) -> int:
        """Index of the directed link ``src -> dst``."""
        try:
            return self._link_index[(src, dst)]
        except KeyError:
            raise TopologyError(
                f"{self.name}: no link {src}->{dst}") from None

    def neighbors(self, node: str) -> Sequence[str]:
        """Nodes reachable over one outgoing link (insertion order)."""
        return tuple(self._adjacency[node])

    # -- routing ------------------------------------------------------------
    def _dists_to(self, dst: str) -> Dict[str, int]:
        """Hop count from every node to ``dst`` (reverse BFS, cached)."""
        cached = self._dist_cache.get(dst)
        if cached is not None:
            return cached
        # BFS over reversed edges: dist[n] = hops from n to dst.
        reverse: Dict[str, List[str]] = {n: [] for n in self._adjacency}
        for spec in self.links:
            reverse[spec.dst].append(spec.src)
        dist = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                d = dist[node] + 1
                for pred in reverse[node]:
                    if pred not in dist:
                        dist[pred] = d
                        nxt.append(pred)
            frontier = nxt
        self._dist_cache[dst] = dist
        return dist

    def path_hops(self, src: str, dst: str) -> int:
        """Shortest-path hop count between two nodes."""
        dist = self._dists_to(dst)
        try:
            return dist[src]
        except KeyError:
            raise TopologyError(
                f"{self.name}: {dst!r} unreachable from {src!r}") from None

    def route(self, src: str, dst: str, flow_id: int = 0) -> List[int]:
        """Deterministic ECMP shortest path as a list of link indices.

        At every node the next hop is drawn from the neighbours that lie
        on *some* shortest path, tie-broken by a stable CRC-32 of
        ``(flow_id, node, dst)`` — different flows spread over the
        equal-cost fan-out, the same flow always repeats its path.
        """
        if src == dst:
            raise TopologyError(f"{self.name}: route {src!r} to itself")
        dist = self._dists_to(dst)
        if src not in dist:
            raise TopologyError(
                f"{self.name}: {dst!r} unreachable from {src!r}")
        path: List[int] = []
        node = src
        while node != dst:
            d = dist[node]
            candidates = [n for n in self._adjacency[node]
                          if dist.get(n, d) == d - 1]
            nxt = candidates[_ecmp_pick(flow_id, node, dst, len(candidates))]
            path.append(self._link_index[(node, nxt)])
            node = nxt
        return path

    def route_nodes(self, src: str, dst: str, flow_id: int = 0) -> List[str]:
        """The node sequence of :meth:`route` (``src`` .. ``dst``)."""
        nodes = [src]
        for idx in self.route(src, dst, flow_id):
            nodes.append(self.links[idx].dst)
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FabricTopology {self.name!r} hosts={len(self.hosts)} "
                f"switches={len(self.switches)} links={self.n_links}>")


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def build_fat_tree(k: int,
                   rate_bps: float = DEFAULT_FABRIC_RATE_BPS,
                   hop_delay_s: float = DEFAULT_HOP_DELAY_S,
                   queue_packets: int = DEFAULT_QUEUE_PACKETS) -> FabricTopology:
    """The classic k-ary fat-tree (Al-Fares et al., and the archgym
    Summit-style interconnect configs in the related work).

    ``k`` must be even and >= 2.  The fabric has ``k`` pods of ``k/2``
    edge and ``k/2`` aggregation switches, ``(k/2)^2`` core switches and
    ``k^3/4`` hosts (``k/2`` per edge switch); every link runs at the
    same ``rate_bps`` (no oversubscription), giving full bisection
    bandwidth.  Directed link count: ``3 * k^3 / 2``.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
    topo = FabricTopology(name=f"fattree(k={k})")
    half = k // 2
    link_kw = dict(rate_bps=rate_bps, delay_s=hop_delay_s,
                   queue_packets=queue_packets)
    cores = [f"core{c}" for c in range(half * half)]
    for core in cores:
        topo.add_node(core)
    for p in range(k):
        edges = [f"pod{p}.edge{e}" for e in range(half)]
        aggs = [f"pod{p}.agg{a}" for a in range(half)]
        for sw in edges + aggs:
            topo.add_node(sw)
        for e, edge in enumerate(edges):
            for h in range(half):
                host = f"host{p}.{e}.{h}"
                topo.add_node(host, host=True)
                topo.add_duplex(host, edge, **link_kw)
            for agg in aggs:
                topo.add_duplex(edge, agg, **link_kw)
        # aggregation switch a of every pod connects to the a-th stripe
        # of k/2 core switches
        for a, agg in enumerate(aggs):
            for c in range(half):
                topo.add_duplex(agg, cores[a * half + c], **link_kw)
    return topo


def build_torus3d(nx: int, ny: int, nz: int,
                  rate_bps: float = DEFAULT_FABRIC_RATE_BPS,
                  hop_delay_s: float = DEFAULT_HOP_DELAY_S,
                  queue_packets: int = DEFAULT_QUEUE_PACKETS) -> FabricTopology:
    """A 3-D torus with wraparound in every dimension (the APENet /
    PACS-CS LQCD fabric shape from the related work).

    Every node is both a host and a router (as on those machines).
    Dimensions must be >= 1; a dimension of size 1 contributes no links,
    size 2 contributes a single duplex pair per node pair (the +1 and
    -1 neighbours coincide).
    """
    dims = (nx, ny, nz)
    if any(d < 1 for d in dims):
        raise TopologyError(f"torus dimensions must be >= 1, got {dims}")
    if nx * ny * nz < 2:
        raise TopologyError("torus needs at least two nodes")
    topo = FabricTopology(name=f"torus3d({nx}x{ny}x{nz})")

    def node(x: int, y: int, z: int) -> str:
        return f"t{x}.{y}.{z}"

    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                topo.add_node(node(x, y, z), host=True)
    link_kw = dict(rate_bps=rate_bps, delay_s=hop_delay_s,
                   queue_packets=queue_packets)
    seen = set()
    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                here = node(x, y, z)
                for dim, size in enumerate(dims):
                    if size < 2:
                        continue
                    coords = [x, y, z]
                    coords[dim] = (coords[dim] + 1) % size
                    there = node(*coords)
                    pair = (here, there)
                    if pair in seen:
                        continue  # size-2 dims: +1 and -1 coincide
                    seen.add(pair)
                    seen.add((there, here))
                    topo.add_duplex(here, there, **link_kw)
    return topo
