"""Store-and-forward Ethernet switch (Foundry FastIron 1500 model).

The paper's indirect and multi-flow tests run through a FastIron 1500
whose 480 Gb/s backplane "far exceeds the needs of our tests"; the
interesting behaviour is per-port: store-and-forward latency (the
measured +6 µs hop penalty of Fig. 6) and output queueing when many GbE
clients aggregate into one 10GbE port.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.chaos.hooks import register_target as register_chaos_target
from repro.errors import LinkError, TopologyError
from repro.net.ethernet import EthernetLink
from repro.net.train import BacklogView, train_batching_enabled
from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment
from repro.sim.monitor import CounterMonitor
from repro.sim.resources import Store
from repro.sim.trace import TraceBuffer
from repro.telemetry.session import active_metrics, register_trace
from repro.units import Gbps, us

__all__ = ["Switch", "SwitchPort", "SwitchModel", "FASTIRON_1500"]


@dataclass(frozen=True)
class SwitchModel:
    """Datasheet-level description of a switch."""

    name: str
    forwarding_latency_s: float
    backplane_bps: float
    port_queue_frames: int

    def __post_init__(self) -> None:
        if self.forwarding_latency_s < 0:
            raise TopologyError("forwarding latency cannot be negative")
        if self.backplane_bps <= 0:
            raise TopologyError("backplane bandwidth must be positive")
        if self.port_queue_frames < 1:
            raise TopologyError("port queue must hold at least one frame")


#: The paper's chassis: +6 µs measured hop penalty (Fig. 6: 25 µs through
#: the switch vs 19 µs back-to-back; ~0.2 µs of that is the second
#: serialization of small frames).
FASTIRON_1500 = SwitchModel(
    name="FastIron 1500",
    forwarding_latency_s=us(5.8),
    backplane_bps=Gbps(480),
    port_queue_frames=512,
)


class SwitchPort:
    """One egress port: an output queue draining onto its link."""

    def __init__(self, env: Environment, switch: "Switch", port_id: str,
                 egress: EthernetLink, queue_frames: int):
        self.env = env
        self.switch = switch
        self.port_id = port_id
        self.egress = egress
        self._batched = train_batching_enabled()
        #: hybrid-mode shared-queue coupling (None outside hybrid runs)
        self.coupling = None
        if self._batched:
            self._backlog: Deque[SkBuff] = deque()
            self._busy = False
            self.queue = BacklogView(self._backlog, queue_frames)
        else:
            self.queue = Store(env, capacity=queue_frames,
                               name=f"{switch.name}.{port_id}.q")
        self.drops = CounterMonitor(env, name=f"{switch.name}.{port_id}.drops")
        self.forwarded = CounterMonitor(env, name=f"{switch.name}.{port_id}.fwd")
        self.trace = switch.trace
        metrics = active_metrics()
        if metrics is not None:
            label = dict(switch=switch.name, port=port_id)
            self._c_fwd = metrics.counter("switch.forwarded", **label)
            self._c_drop = metrics.counter("switch.drops", **label)
        else:
            self._c_fwd = self._c_drop = None
        register_chaos_target("switch_port", f"{switch.name}.{port_id}", self)
        if not self._batched:
            env.process(self._drain(), name=f"{switch.name}.{port_id}.drain")

    def enqueue(self, skb: SkBuff) -> None:
        """Apply the (pipelined) forwarding latency, then queue for
        egress; a full queue means drop-tail."""
        self.env.schedule_call(self.switch.model.forwarding_latency_s,
                               self._enqueue, skb)

    def couple(self, coupling) -> None:
        """Attach a hybrid-mode :class:`~repro.net.coupling.QueueCoupling`.

        Fluid background pressure then early-drops frames at admission
        (the queue is shared) and every forwarded frame is reported back
        for the fluid model's cross-traffic accounting."""
        self.coupling = coupling

    def _enqueue(self, skb: SkBuff) -> None:
        trace = self.trace
        coupling = self.coupling
        if self.queue.level >= self.queue.capacity or \
                (coupling is not None and not coupling.admit()):
            self.drops.add()
            if self._c_drop is not None:
                self._c_drop.inc()
            if trace.enabled:
                trace.post(self.env.now, "switch.drop", skb.ident,
                           port=self.port_id, qlen=self.queue.level)
            return
        if trace.enabled:
            trace.post(self.env.now, "switch.enqueue", skb.ident,
                       port=self.port_id, qlen=self.queue.level)
        if not self._batched:
            self.queue.put(skb)
            return
        if self._busy:
            # Joins the train already draining; counted in the queue
            # level exactly like a Store item awaiting the drain's get.
            self._backlog.append(skb)
        else:
            # One zero-delay hop: the legacy drain's Store.get wakeup.
            self._busy = True
            self.env.schedule_call(0.0, self._service, skb)

    # -- train-batched drain ------------------------------------------------------
    def _service(self, skb: SkBuff) -> None:
        end = self.egress.charge_frame(skb)
        self.env.schedule_call_at(end, self._serialized, skb)

    def _serialized(self, skb: SkBuff) -> None:
        self.forwarded.add()
        if self._c_fwd is not None:
            self._c_fwd.inc()
        if self.coupling is not None:
            self.coupling.record_service(skb.wire_bytes)
        trace = self.trace
        if trace.enabled:
            trace.post(self.env.now, "switch.forward", skb.ident,
                       port=self.port_id)
        if self._backlog:
            self._service(self._backlog.popleft())
        else:
            self._busy = False

    def _drain(self):
        while True:
            skb = yield self.queue.get()
            # block on serialization so backlog (and drop-tail) stays
            # in this output queue
            yield from self.egress.send(skb)
            self.forwarded.add()
            if self._c_fwd is not None:
                self._c_fwd.inc()
            if self.coupling is not None:
                self.coupling.record_service(skb.wire_bytes)
            trace = self.trace
            if trace.enabled:
                trace.post(self.env.now, "switch.forward", skb.ident,
                           port=self.port_id)


class Switch:
    """A named switch with an address-learning forwarding table.

    Build topology by calling :meth:`add_port` with each egress link,
    then :meth:`learn` for every address reachable through a port.
    Ingress links are connected with the switch itself as sink.
    """

    def __init__(self, env: Environment, model: SwitchModel = FASTIRON_1500,
                 name: str = "switch"):
        self.env = env
        self.model = model
        self.name = name
        self._ports: Dict[str, SwitchPort] = {}
        self._fdb: Dict[str, str] = {}
        self.flooded = CounterMonitor(env, name=f"{name}.flooded")
        self.trace = TraceBuffer(enabled=False)
        register_trace(name, self.trace)

    # -- topology -------------------------------------------------------------
    def add_port(self, port_id: str, egress: EthernetLink) -> SwitchPort:
        """Create an egress port draining onto ``egress``."""
        if port_id in self._ports:
            raise TopologyError(f"{self.name}: duplicate port {port_id!r}")
        port = SwitchPort(self.env, self, port_id, egress,
                          self.model.port_queue_frames)
        self._ports[port_id] = port
        return port

    def learn(self, address: str, port_id: str) -> None:
        """Bind ``address`` to a port in the forwarding table."""
        if port_id not in self._ports:
            raise TopologyError(f"{self.name}: unknown port {port_id!r}")
        self._fdb[address] = port_id

    def port(self, port_id: str) -> SwitchPort:
        """Lookup a port by id."""
        try:
            return self._ports[port_id]
        except KeyError:
            raise TopologyError(f"{self.name}: unknown port {port_id!r}") from None

    # -- data path ----------------------------------------------------------------
    def receive_frame(self, skb: SkBuff) -> None:
        """Ingress: forward by destination address."""
        dst = skb.meta.get("dst")
        if dst is None:
            raise LinkError(f"{self.name}: frame #{skb.ident} has no dst")
        port_id = self._fdb.get(dst)
        if port_id is None:
            # Unknown unicast: a real switch floods; in our closed
            # topologies this is always a wiring bug, so fail loudly.
            self.flooded.add()
            raise TopologyError(
                f"{self.name}: no forwarding entry for {dst!r}")
        self._ports[port_id].enqueue(skb)

    def total_drops(self) -> int:
        """Frames dropped across all ports."""
        return sum(int(p.drops.total) for p in self._ports.values())
