"""Cross-validation: the analytic model against the packet-level DES.

The repository carries two engines — the packet-level simulator (ground
truth for this reproduction) and the closed-form/fluid shortcuts used
for fast full-resolution curves.  This module measures how well the
shortcuts track the DES, configuration by configuration, so the
shortcuts can be trusted (and their drift caught by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.presets import HostSpec, PE2650
from repro.net.topology import BackToBack
from repro.sim.engine import Environment
from repro.tcp.analytic import predict_throughput_bps
from repro.tcp.connection import TcpConnection
from repro.tcp.mss import mss_for_mtu
from repro.tools.nttcp import nttcp_run

__all__ = ["ValidationPoint", "ValidationReport", "cross_validate"]


@dataclass(frozen=True)
class ValidationPoint:
    """One (config, payload) comparison."""

    label: str
    payload: int
    des_bps: float
    analytic_bps: float

    @property
    def ratio(self) -> float:
        """analytic / DES."""
        return self.analytic_bps / self.des_bps

    @property
    def abs_error(self) -> float:
        """|analytic - DES| / DES."""
        return abs(self.analytic_bps - self.des_bps) / self.des_bps


@dataclass
class ValidationReport:
    """All comparison points plus aggregate agreement measures."""

    points: List[ValidationPoint]

    def max_error(self) -> float:
        """Worst relative disagreement."""
        if not self.points:
            raise MeasurementError("no validation points")
        return max(p.abs_error for p in self.points)

    def mean_error(self) -> float:
        """Average relative disagreement."""
        if not self.points:
            raise MeasurementError("no validation points")
        return float(np.mean([p.abs_error for p in self.points]))

    def rank_agreement(self) -> bool:
        """Do the two engines order the configurations identically?
        (The property the fast figures actually rely on.)"""
        des_order = [p.label for p in
                     sorted(self.points, key=lambda p: p.des_bps)]
        ana_order = [p.label for p in
                     sorted(self.points, key=lambda p: p.analytic_bps)]
        return des_order == ana_order

    def rows(self) -> List[dict]:
        """Table rows for reporting."""
        return [{
            "config": p.label,
            "payload": p.payload,
            "DES Gb/s": round(p.des_bps / 1e9, 2),
            "analytic Gb/s": round(p.analytic_bps / 1e9, 2),
            "ratio": round(p.ratio, 2),
        } for p in self.points]


def cross_validate(configs: Optional[Sequence[TuningConfig]] = None,
                   spec: HostSpec = PE2650,
                   count: int = 384,
                   calibration: Calibration = DEFAULT_CALIBRATION
                   ) -> ValidationReport:
    """Run both engines over a set of configurations at MSS payloads."""
    if configs is None:
        configs = (
            TuningConfig.stock(1500),
            TuningConfig.stock(9000),
            TuningConfig.with_pcix_burst(9000),
            TuningConfig.oversized_windows(9000),
            TuningConfig.fully_tuned(8160),
        )
    points: List[ValidationPoint] = []
    for config in configs:
        payload = mss_for_mtu(config.mtu, config.tcp_timestamps)
        env = Environment()
        testbed = BackToBack.create(env, config, spec=spec,
                                    calibration=calibration)
        conn = TcpConnection(env, testbed.a, testbed.b)
        des = nttcp_run(env, conn, payload, count).goodput_bps
        analytic = predict_throughput_bps(spec, config, payload,
                                          calibration=calibration)
        points.append(ValidationPoint(label=config.describe(),
                                      payload=payload,
                                      des_bps=des, analytic_bps=analytic))
    return ValidationReport(points=points)
