"""Per-packet stack cost accounting — the paper's §5 follow-on work.

"To continue this work, we are currently instrumenting the Linux TCP
stack with MAGNET to perform per-packet profiling and tracing of the
stack's control path...  Analysis of this data is giving us an
unprecedentedly high-resolution picture of the most expensive aspects
of TCP processing overhead."

:class:`StackProfiler` produces that picture for the simulated stack:
it decomposes the cost of moving one segment end-to-end into the named
stages of the cost model (syscall, TCP transmit, allocation, copies,
DMA, wire, interrupt, TCP receive, wakeup) and reports both per-packet
budgets and their share of the bottleneck — i.e. *where the time goes*
at each MTU, which is exactly the question §3.5.2 answers informally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.hw.calibration import Calibration, CostModel, DEFAULT_CALIBRATION
from repro.hw.pcix import BURST_OVERHEAD_S
from repro.hw.presets import HostSpec, PE2650
from repro.oskernel.skbuff import ETH_OVERHEAD_WIRE
from repro.tcp.mss import mss_for_mtu
from repro.units import Gbps

__all__ = ["StageCost", "StackProfile", "StackProfiler"]


@dataclass(frozen=True)
class StageCost:
    """One stage's share of a segment's journey."""

    stage: str
    where: str           # "sender CPU" / "bus" / "wire" / "receiver CPU"
    seconds: float
    overlappable: bool   # pipelined stages do not bind throughput alone

    @property
    def microseconds(self) -> float:
        """Cost in µs."""
        return self.seconds * 1e6


@dataclass
class StackProfile:
    """The full decomposition for one (platform, config, payload)."""

    spec_name: str
    config_label: str
    payload: int
    stages: List[StageCost]

    def total_us(self, where: str = "") -> float:
        """Sum of stage costs, optionally filtered by location."""
        return sum(s.microseconds for s in self.stages
                   if not where or s.where == where)

    def bottleneck(self) -> str:
        """The location whose serial work is largest (what binds)."""
        by_where: Dict[str, float] = {}
        for s in self.stages:
            by_where[s.where] = by_where.get(s.where, 0.0) + s.seconds
        return max(by_where, key=by_where.get)

    def predicted_goodput_bps(self) -> float:
        """Payload rate implied by the binding location."""
        by_where: Dict[str, float] = {}
        for s in self.stages:
            by_where[s.where] = by_where.get(s.where, 0.0) + s.seconds
        worst = max(by_where.values())
        if worst <= 0:
            raise MeasurementError("profile has no positive costs")
        return self.payload * 8.0 / worst

    def rows(self) -> List[Dict[str, object]]:
        """Table rows, most expensive first."""
        total = sum(s.seconds for s in self.stages)
        out = []
        for s in sorted(self.stages, key=lambda x: -x.seconds):
            out.append({
                "stage": s.stage,
                "where": s.where,
                "us/segment": round(s.microseconds, 2),
                "share": f"{s.seconds / total * 100:.0f}%",
            })
        return out


class StackProfiler:
    """Decompose the per-segment cost of one configuration."""

    def __init__(self, spec: HostSpec = PE2650,
                 calibration: Calibration = DEFAULT_CALIBRATION,
                 wire_bps: float = Gbps(10)):
        self.spec = spec
        self.calibration = calibration
        self.wire_bps = wire_bps

    def profile(self, config: TuningConfig,
                payload: int = 0) -> StackProfile:
        """Stage costs for one MSS-sized (or given) segment."""
        costs = CostModel(self.spec, config, self.calibration)
        mss = mss_for_mtu(config.mtu, config.tcp_timestamps)
        if payload <= 0:
            payload = mss
        frame = costs.frame_bytes(payload)
        cal = costs.cal

        # decompose tx_segment_s into its documented parts
        tx_total = costs.tx_segment_s(payload)
        tx_alloc = costs.alloc_cost_s(frame)
        tx_copy = payload * costs._tx_byte_s * costs.kernel.per_packet_tax
        tx_proto = max(0.0, tx_total - tx_alloc - tx_copy)

        rx_total = costs.rx_segment_s(payload)
        if config.os_bypass:
            rx_alloc = 0.0
        elif config.header_splitting:
            rx_alloc = costs.alloc_cost_s(128)
        else:
            rx_alloc = costs.alloc_cost_s(frame)
        rx_bytes = payload * costs._rx_byte_s * costs.kernel.per_packet_tax
        rx_proto = max(0.0, rx_total - rx_alloc - rx_bytes)

        if config.csa:
            from repro.hw.csa import MCH_LINK_BPS, MCH_TRANSFER_OVERHEAD_S
            dma = (frame * 8.0 / MCH_LINK_BPS + MCH_TRANSFER_OVERHEAD_S)
        else:
            bursts = -(-frame // config.mmrbc)
            dma = (frame * 8.0 / (self.spec.pcix_mhz * 1e6 * 64)
                   + bursts * BURST_OVERHEAD_S)

        stages = [
            StageCost("write() syscall", "sender CPU",
                      costs.tx_syscall_s(), False),
            StageCost("TCP/IP transmit + descriptor", "sender CPU",
                      tx_proto, False),
            StageCost("skb allocation (tx)", "sender CPU", tx_alloc, False),
            StageCost("user->kernel copy", "sender CPU", tx_copy, False),
            StageCost("ACK processing (amortised)", "sender CPU",
                      0.5 * costs.tx_ack_rx_s(), False),
            StageCost("DMA to adapter", "sender bus", dma, True),
            StageCost("wire serialization", "wire",
                      (frame + ETH_OVERHEAD_WIRE) * 8.0 / self.wire_bps,
                      True),
            StageCost("DMA to host memory", "receiver bus", dma, True),
            StageCost("interrupt service (amortised)", "receiver CPU",
                      costs.rx_irq_s(), False),
            StageCost("TCP/IP receive", "receiver CPU", rx_proto, False),
            StageCost("skb allocation (rx)", "receiver CPU", rx_alloc,
                      False),
            StageCost("data movement (FSB + copy)", "receiver CPU",
                      rx_bytes, False),
            StageCost("ACK generation (amortised)", "receiver CPU",
                      0.5 * costs.rx_ack_gen_s(), False),
            StageCost("reader wakeup", "receiver CPU",
                      costs.rx_wake_s(), False),
        ]
        return StackProfile(spec_name=self.spec.name,
                            config_label=config.describe(),
                            payload=payload, stages=stages)

    def compare(self, configs: Dict[str, TuningConfig]) -> List[Dict[str, object]]:
        """One summary row per configuration: totals + bottleneck."""
        rows = []
        for label, config in configs.items():
            prof = self.profile(config)
            rows.append({
                "config": label,
                "payload": prof.payload,
                "sender CPU (us)": round(prof.total_us("sender CPU"), 2),
                "receiver CPU (us)": round(prof.total_us("receiver CPU"), 2),
                "bus (us)": round(prof.total_us("sender bus"), 2),
                "bottleneck": prof.bottleneck(),
                "implied Gb/s": round(
                    prof.predicted_goodput_bps() / 1e9, 2),
            })
        return rows
