"""The experiment registry: every table and figure, one callable each.

``run_experiment("fig3")`` regenerates the data behind Figure 3 and
returns an :class:`ExperimentOutput` whose ``text`` is a printable
report and whose ``data`` carries the raw values for assertions.
Benchmarks and examples both drive this registry, so the mapping
"paper artifact -> code" lives in exactly one place (mirroring the
per-experiment index in DESIGN.md).

Runners accept a ``quick`` flag: True (default) uses scaled-down sweep
resolution suitable for CI; False approaches paper-scale averaging.

``run_experiment`` additionally threads two performance knobs through
every runner:

* ``jobs`` — worker processes for the independent simulation points
  inside an experiment (sweep payloads, MTUs, buffer factors, probes).
  Points dispatch through the persistent warm worker pool
  (:mod:`repro.sim.pool`), so consecutive experiments reuse the same
  worker processes instead of re-spawning a pool per sweep.  Results
  are bit-identical at any job count.
* ``cache`` — the on-disk result cache (see :mod:`repro.cache`): both
  individual points and whole experiment outputs are memoized keyed by
  configuration + code fingerprint, so warm reruns are near-instant —
  a fully-warm experiment never touches the worker pool at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.cache import active_cache, cache_context, code_fingerprint
from repro.config import TuningConfig
from repro.errors import MeasurementError
from repro.sim.runner import SweepRunner, job_context
from repro.telemetry.session import active_session
from repro.units import Gbps

__all__ = ["ExperimentOutput", "EXPERIMENTS", "run_experiment",
           "experiment_ids"]


@dataclass
class ExperimentOutput:
    """Result of one experiment regeneration."""

    experiment: str
    text: str
    data: Dict[str, Any]


_RUNNERS: Dict[str, Callable[[bool], ExperimentOutput]] = {}
EXPERIMENTS = _RUNNERS  # public alias


def _register(name: str):
    def wrap(fn):
        _RUNNERS[name] = fn
        return fn
    return wrap


def experiment_ids() -> List[str]:
    """All registered experiment ids."""
    return sorted(_RUNNERS)


def run_experiment(name: str, quick: bool = True,
                   jobs: Optional[int] = None,
                   cache: Any = None) -> ExperimentOutput:
    """Regenerate one paper artifact by id (see DESIGN.md index).

    ``jobs`` fans the experiment's independent simulation points out
    over that many worker processes (None: ``REPRO_JOBS`` or serial);
    the returned ``data`` is bit-identical at any job count.  ``cache``
    activates the on-disk result cache for this call: True for the
    default ``.repro-cache/``, False to force recomputation, a
    :class:`repro.cache.ResultCache` to use a specific store, or None
    to inherit the ambient setting (``REPRO_CACHE`` / an enclosing
    :func:`repro.cache.cache_context`).
    """
    try:
        runner = _RUNNERS[name]
    except KeyError:
        raise MeasurementError(
            f"unknown experiment {name!r}; known: {experiment_ids()}"
        ) from None
    with job_context(jobs), cache_context(cache):
        store = active_cache()
        if active_session() is not None:
            # A telemetry session wants metrics/events from the actual
            # run; whole-output (and per-point) memoization would skip
            # the simulations that produce them.
            store = None
        if store is not None:
            # Whole-output memoization on top of per-point caching: a
            # warm rerun skips even the reporting/analysis layer.  The
            # job count is deliberately not part of the key — parallel
            # and serial runs produce identical outputs.
            key = store.key("experiment-output", name, bool(quick),
                            code_fingerprint())
            hit, value = store.get(key)
            if hit:
                return value
        output = runner(quick)
        if store is not None:
            store.put(key, output)
        return output


# ---------------------------------------------------------------------------
# Figures 3-5: the throughput ladder
# ---------------------------------------------------------------------------

def _sweep_settings(quick: bool):
    return {"write_count": 768 if quick else 4096,
            "points": 10 if quick else 24}


@_register("fig3")
def _fig3(quick: bool = True) -> ExperimentOutput:
    """Fig. 3: stock TCP, 1500 vs 9000 MTU (+ the §3.3 CPU loads)."""
    from repro.analysis.figures import Figure, Series
    from repro.analysis.tables import format_kv
    from repro.core.casestudy import CaseStudy

    study = CaseStudy(**_sweep_settings(quick))
    curves = {mtu: study.sweep(TuningConfig.stock(mtu))
              for mtu in (1500, 9000)}
    fig = Figure(title="Figure 3: Throughput of Stock TCP",
                 xlabel="payload (bytes)", ylabel="Gb/s")
    for mtu, curve in curves.items():
        fig.add(Series(label=f"{mtu}MTU,SMP,512PCI",
                       x=curve.payloads, y=curve.goodputs_gbps))
    summary = {
        "peak_1500_gbps (paper 1.8)": curves[1500].peak_gbps,
        "peak_9000_gbps (paper 2.7)": curves[9000].peak_gbps,
        "load_1500 (paper ~0.9)": curves[1500].mean_receiver_load,
        "load_9000 (paper ~0.4)": curves[9000].mean_receiver_load,
        "dip_9000 in [7436,8948] (paper: marked dip)":
            curves[9000].dip(7436, 8948),
    }
    return ExperimentOutput(
        experiment="fig3",
        text=fig.render() + "\n\n" + format_kv(summary, "Fig. 3 summary"),
        data={"curves": curves, "summary": summary})


@_register("opt_steps")
def _opt_steps(quick: bool = True) -> ExperimentOutput:
    """§3.3 ladder: per-step peaks vs the paper's."""
    from repro.analysis.tables import format_table
    from repro.core.casestudy import CaseStudy

    study = CaseStudy(**_sweep_settings(quick))
    results = study.run_ladder(mtus=(1500, 9000))
    rows = []
    for step_result in results:
        for mtu, curve in step_result.curves.items():
            rows.append({
                "step": step_result.step.name,
                "mtu": mtu,
                "peak_gbps": curve.peak_gbps,
                "avg_gbps": curve.average_gbps,
                "paper_peak_gbps": step_result.paper_peak(mtu) or "-",
            })
    return ExperimentOutput(
        experiment="opt_steps",
        text=format_table(rows, title="§3.3 cumulative optimization ladder"),
        data={"results": results, "rows": rows})


@_register("fig4")
def _fig4(quick: bool = True) -> ExperimentOutput:
    """Fig. 4: oversized windows remove the stock dip."""
    from repro.analysis.figures import Figure, Series
    from repro.analysis.tables import format_kv
    from repro.core.casestudy import CaseStudy

    study = CaseStudy(**_sweep_settings(quick))
    curves = {mtu: study.sweep(TuningConfig.oversized_windows(mtu))
              for mtu in (1500, 9000)}
    stock = study.sweep(TuningConfig.stock(9000))
    fig = Figure(title="Figure 4: Oversized Windows + PCI-X Burst + UP",
                 xlabel="payload (bytes)", ylabel="Gb/s")
    for mtu, curve in curves.items():
        fig.add(Series(label=f"{mtu}MTU,UP,4096PCI,256kbuf",
                       x=curve.payloads, y=curve.goodputs_gbps))
    summary = {
        "peak_1500_gbps (paper 2.47)": curves[1500].peak_gbps,
        "peak_9000_gbps (paper 3.9)": curves[9000].peak_gbps,
        "dip_9000_stock": stock.dip(7436, 8948),
        "dip_9000_bigwin (paper: eliminated)": curves[9000].dip(7436, 8948),
    }
    return ExperimentOutput(
        experiment="fig4",
        text=fig.render() + "\n\n" + format_kv(summary, "Fig. 4 summary"),
        data={"curves": curves, "stock": stock, "summary": summary})


@_register("fig5")
def _fig5(quick: bool = True) -> ExperimentOutput:
    """Fig. 5: non-standard MTUs 8160 and 16000 (+ peer theoretical
    maxima for context)."""
    from repro.analysis.figures import Figure, Series
    from repro.analysis.tables import format_kv
    from repro.core.casestudy import CaseStudy

    study = CaseStudy(**_sweep_settings(quick))
    curves = study.run_mtu_tuning(mtus=(8160, 16000))
    fig = Figure(title="Figure 5: Non-Standard MTUs (cumulative opts)",
                 xlabel="payload (bytes)", ylabel="Gb/s")
    for mtu, curve in curves.items():
        fig.add(Series(label=f"{mtu}MTU,UP,4096PCI,256kbuf",
                       x=curve.payloads, y=curve.goodputs_gbps))
    summary = {
        "peak_8160_gbps (paper 4.11)": curves[8160].peak_gbps,
        "peak_16000_gbps (paper 4.09)": curves[16000].peak_gbps,
        "avg_16000_minus_avg_8160 (paper: clearly higher)":
            curves[16000].average_gbps - curves[8160].average_gbps,
        "GbE theoretical (Gb/s)": 1.0,
        "Myrinet theoretical (Gb/s)": 2.0,
        "Quadrics theoretical (Gb/s)": 3.2,
    }
    return ExperimentOutput(
        experiment="fig5",
        text=fig.render() + "\n\n" + format_kv(summary, "Fig. 5 summary"),
        data={"curves": curves, "summary": summary})


# ---------------------------------------------------------------------------
# Figures 6-7: latency
# ---------------------------------------------------------------------------

@_register("fig6")
def _fig6(quick: bool = True) -> ExperimentOutput:
    """Fig. 6: latency vs payload with 5 µs interrupt coalescing."""
    from repro.analysis.figures import Figure, Series
    from repro.analysis.tables import format_kv
    from repro.core.latencyreport import DEFAULT_LATENCY_PAYLOADS, LatencyStudy

    payloads = DEFAULT_LATENCY_PAYLOADS[::4] if quick else DEFAULT_LATENCY_PAYLOADS
    study = LatencyStudy(iterations=4 if quick else 10)
    b2b = study.measure(5.0, False, payloads)
    sw = study.measure(5.0, True, payloads)
    fig = Figure(title="Figure 6: End-to-End Latency (coalescing on)",
                 xlabel="payload (bytes)", ylabel="latency (us)")
    fig.add(Series("back-to-back", b2b.payloads, b2b.latencies_us))
    fig.add(Series("through switch", sw.payloads, sw.latencies_us))
    summary = {
        "base_b2b_us (paper 19)": b2b.base_latency_us,
        "base_switch_us (paper 25)": sw.base_latency_us,
        "growth_b2b (paper ~0.2)": b2b.growth_fraction,
    }
    return ExperimentOutput(
        experiment="fig6",
        text=fig.render() + "\n\n" + format_kv(summary, "Fig. 6 summary"),
        data={"b2b": b2b, "switch": sw, "summary": summary})


@_register("fig7")
def _fig7(quick: bool = True) -> ExperimentOutput:
    """Fig. 7: latency without interrupt coalescing."""
    from repro.analysis.figures import Figure, Series
    from repro.analysis.tables import format_kv
    from repro.core.latencyreport import DEFAULT_LATENCY_PAYLOADS, LatencyStudy

    payloads = DEFAULT_LATENCY_PAYLOADS[::4] if quick else DEFAULT_LATENCY_PAYLOADS
    study = LatencyStudy(iterations=4 if quick else 10)
    off = study.measure(0.0, False, payloads)
    on = study.measure(5.0, False, payloads)
    fig = Figure(title="Figure 7: Latency without Interrupt Coalescing",
                 xlabel="payload (bytes)", ylabel="latency (us)")
    fig.add(Series("coalescing off", off.payloads, off.latencies_us))
    fig.add(Series("coalescing 5us", on.payloads, on.latencies_us))
    summary = {
        "base_off_us (paper 14)": off.base_latency_us,
        "saved_us (paper ~5)": on.base_latency_us - off.base_latency_us,
    }
    return ExperimentOutput(
        experiment="fig7",
        text=fig.render() + "\n\n" + format_kv(summary, "Fig. 7 summary"),
        data={"off": off, "on": on, "summary": summary})


# ---------------------------------------------------------------------------
# Fig. 8 + §3.5.1 window arithmetic
# ---------------------------------------------------------------------------

@_register("fig8")
def _fig8(quick: bool = True) -> ExperimentOutput:
    """Fig. 8 + the §3.5.1 worked example: MSS-aligned window losses."""
    from repro.analysis.tables import format_kv
    from repro.tcp.analytic import (mss_aligned_window,
                                    sender_receiver_mismatch,
                                    window_efficiency)

    ideal = 26 * 1024
    mss = 8960
    aligned = mss_aligned_window(ideal, mss)
    mismatch = sender_receiver_mismatch()
    summary = {
        "ideal_window_bytes": ideal,
        "mss": mss,
        "mss_allowed_window (paper ~18KB)": aligned,
        "efficiency (paper ~0.69)": window_efficiency(ideal, mss),
        "example_advertised (paper 26844)": mismatch.advertised_window,
        "example_usable (paper 17920)": mismatch.usable_window,
        "example_usable_loss (paper ~0.5)": mismatch.usable_loss,
    }
    return ExperimentOutput(
        experiment="fig8",
        text=format_kv(summary, "Figure 8 / §3.5.1 window arithmetic"),
        data={"summary": summary, "mismatch": mismatch})


# ---------------------------------------------------------------------------
# Table 1: AIMD recovery times
# ---------------------------------------------------------------------------

def _tab1_row(task: tuple) -> Dict[str, Any]:
    """One Table 1 case (module-level for the parallel runner)."""
    from repro.tcp.analytic import recovery_time_s

    path, bw, rtt, mss = task
    t = recovery_time_s(bw, rtt, mss)
    return {
        "path": path,
        "bandwidth_gbps": bw / 1e9,
        "rtt_ms": rtt * 1e3,
        "mss_bytes": mss,
        "recovery": _fmt_duration(t),
        "recovery_s": t,
    }


@_register("tab1")
def _tab1(quick: bool = True) -> ExperimentOutput:
    """Table 1: time to recover from a single packet loss."""
    from repro.analysis.tables import format_table

    cases = [
        ("LAN", Gbps(10), 0.0002, 1460),
        ("LAN", Gbps(10), 0.0002, 8960),
        ("Geneva-Chicago", Gbps(10), 0.120, 1460),
        ("Geneva-Chicago", Gbps(10), 0.120, 8960),
        ("Geneva-Sunnyvale", Gbps(10), 0.180, 1460),
        ("Geneva-Sunnyvale", Gbps(10), 0.180, 8960),
    ]
    rows = SweepRunner().map(_tab1_row, cases, cache_ns="tab1-row")
    return ExperimentOutput(
        experiment="tab1",
        text=format_table(rows, title="Table 1: single-loss recovery time "
                          "(paper: Geneva-Chicago/1460 = 1 hr 42 min, "
                          "Geneva-Sunnyvale/1460 = 3 hr 51 min)"),
        data={"rows": rows})


def _fmt_duration(t: float) -> str:
    if t < 1.0:
        return f"{t * 1e3:.1f} ms"
    if t < 60.0:
        return f"{t:.1f} s"
    if t < 3600.0:
        return f"{int(t // 60)} min {int(t % 60)} s"
    return f"{int(t // 3600)} hr {int((t % 3600) // 60)} min"


# ---------------------------------------------------------------------------
# §3.5.2 bottleneck decomposition
# ---------------------------------------------------------------------------

def _multiflow_probe(task: tuple):
    """One §3.5.2 probe (module-level for the parallel runner)."""
    from repro.core.bottleneck import BottleneckStudy

    n_clients, duration_s, probe = task
    study = BottleneckStudy(n_clients=n_clients, duration_s=duration_s)
    return getattr(study, probe)()


@_register("multiflow")
def _multiflow(quick: bool = True) -> ExperimentOutput:
    """§3.5.2: RX/TX symmetry and the dual-adapter test."""
    from repro.analysis.tables import format_kv

    n_clients = 4 if quick else 8
    duration_s = 0.01 if quick else 0.04
    rx, tx, dual = SweepRunner().map(
        _multiflow_probe,
        [(n_clients, duration_s, probe)
         for probe in ("receive_path", "transmit_path", "dual_adapters")],
        cache_ns="multiflow-probe")
    summary = {
        "rx_aggregate_gbps": rx.aggregate_gbps,
        "tx_aggregate_gbps": tx.aggregate_gbps,
        "asymmetry (paper: statistically equal)":
            abs(rx.aggregate_bps - tx.aggregate_bps) / rx.aggregate_bps,
        "dual_adapter_gbps (paper: identical to single)":
            dual.aggregate_gbps,
    }
    return ExperimentOutput(
        experiment="multiflow",
        text=format_kv(summary, "§3.5.2 multi-flow probes"),
        data={"rx": rx, "tx": tx, "dual": dual, "summary": summary})


@_register("pktgen")
def _pktgen(quick: bool = True) -> ExperimentOutput:
    """§3.5.2: the kernel packet generator ceiling."""
    from repro.analysis.tables import format_kv
    from repro.core.bottleneck import BottleneckStudy

    study = BottleneckStudy()
    result = study.pktgen_ceiling(packets=1024 if quick else 8192)
    single = study.single_flow()
    summary = {
        "pktgen_gbps (paper 5.5)": result.rate_gbps,
        "pktgen_pps (paper ~84k)": result.packets_per_sec,
        "tcp_single_flow_gbps (paper 4.11)": single / 1e9,
        "tcp_fraction_of_pktgen (paper ~0.75)": single / result.rate_bps,
    }
    return ExperimentOutput(
        experiment="pktgen",
        text=format_kv(summary, "§3.5.2 packet generator"),
        data={"pktgen": result, "single_flow_bps": single,
              "summary": summary})


@_register("stream")
def _stream(quick: bool = True) -> ExperimentOutput:
    """§3.5.2: STREAM memory bandwidth across platforms."""
    from repro.analysis.tables import format_table
    from repro.core.bottleneck import BottleneckStudy

    results = BottleneckStudy().stream_comparison()
    rows = [{"host": name, "stream_copy_gbps": r.copy_gbps,
             "theoretical_gbps": r.theoretical_bps / 1e9}
            for name, r in results.items()]
    return ExperimentOutput(
        experiment="stream",
        text=format_table(rows, title="STREAM copy bandwidth "
                          "(paper: PE4600 = 12.8 Gb/s, ~50% above PE2650; "
                          "E7505 within a few % of PE2650)"),
        data={"results": results, "rows": rows})


# ---------------------------------------------------------------------------
# §3.4 anecdotal systems
# ---------------------------------------------------------------------------

@_register("anecdotal")
def _anecdotal(quick: bool = True) -> ExperimentOutput:
    """§3.4: E7505 out-of-box; Itanium-II aggregated flows."""
    from repro.analysis.tables import format_kv
    from repro.core.casestudy import CaseStudy
    from repro.hw.presets import GBE_HOST, INTEL_E7505, ITANIUM2
    from repro.net.topology import MultiFlow
    from repro.sim.engine import Environment
    from repro.tcp.connection import TcpConnection
    from repro.tools.nttcp import nttcp_run

    # E7505: as shipped by Intel for evaluation — MMRBC already raised,
    # jumbo frames and generous socket buffers preconfigured; §3.4 notes
    # the 4.64 Gb/s additionally required timestamps off.
    from repro.units import KB
    e_cfg = TuningConfig(mtu=9000, mmrbc=4096, tcp_timestamps=False,
                         tcp_rmem=KB(256), tcp_wmem=KB(256))
    study = CaseStudy(spec=INTEL_E7505, write_count=768 if quick else 4096,
                      points=8 if quick else 16)
    e_curve = study.sweep(e_cfg, label="E7505 out-of-box")

    # Itanium-II: aggregate 10GbE clients through the switch.
    env = Environment()
    cfg = TuningConfig.oversized_windows(9000)
    topo = MultiFlow.create(env, cfg, n_clients=4 if quick else 8,
                            server_spec=ITANIUM2,
                            client_spec=INTEL_E7505,
                            client_rate_bps=Gbps(10))
    conns = [TcpConnection(env, c, topo.server) for c in topo.clients]
    stop = {"flag": False}

    def src(conn):
        while not stop["flag"]:
            yield from conn.write(65536)

    for conn in conns:
        env.process(src(conn))
    horizon = 0.01 if quick else 0.04
    env.run(until=horizon / 2)
    base = [c.receiver.bytes_delivered for c in conns]
    t0 = env.now
    env.run(until=t0 + horizon)
    stop["flag"] = True
    agg = sum((c.receiver.bytes_delivered - b) * 8.0 / (env.now - t0)
              for c, b in zip(conns, base))
    summary = {
        "e7505_peak_gbps (paper 4.64)": e_curve.peak_gbps,
        "itanium2_aggregate_gbps (paper 7.2)": agg / 1e9,
    }
    return ExperimentOutput(
        experiment="anecdotal",
        text=format_kv(summary, "§3.4 anecdotal systems"),
        data={"e7505": e_curve, "itanium_bps": agg, "summary": summary})


# ---------------------------------------------------------------------------
# §3.5.4 comparison and §4 WAN
# ---------------------------------------------------------------------------

def _mtu_scan_point(task: tuple) -> Dict[str, Any]:
    """One MTU point on a fresh tuned testbed (module-level for the
    parallel runner)."""
    from repro.net.topology import BackToBack
    from repro.oskernel.allocator import block_size_for
    from repro.sim.engine import Environment
    from repro.tcp.connection import TcpConnection
    from repro.tcp.mss import mss_for_mtu
    from repro.tools.nttcp import nttcp_run

    mtu, count = task
    cfg = TuningConfig.fully_tuned(mtu)
    payload = mss_for_mtu(mtu, cfg.tcp_timestamps)
    env = Environment()
    bb = BackToBack.create(env, cfg)
    conn = TcpConnection(env, bb.a, bb.b)
    result = nttcp_run(env, conn, payload, count)
    return {
        "mtu": mtu,
        "frame_block": block_size_for(mtu + 18),
        "goodput_gbps": round(result.goodput_gbps, 2),
        "rx_load": round(result.receiver_load, 2),
    }


@_register("mtu_scan")
def _mtu_scan(quick: bool = True) -> ExperimentOutput:
    """Peak goodput vs MTU across the adapter's range: the allocator's
    block boundaries carve the §3.3 sawtooth (8160 beats 9000; the next
    win sits just under the 16 KB + headers boundary)."""
    from repro.analysis.figures import Figure, Series
    from repro.analysis.tables import format_table

    mtus = (1500, 3000, 4050, 4500, 6000, 8160, 9000, 12000, 16000) \
        if quick else tuple(range(1500, 16001, 500)) + (8160, 16000)
    count = 512 if quick else 2048
    rows = SweepRunner().map(
        _mtu_scan_point, [(mtu, count) for mtu in sorted(set(mtus))],
        cache_ns="mtu-scan")
    fig = Figure(title="Peak goodput vs MTU (fully tuned)",
                 xlabel="MTU (bytes)", ylabel="Gb/s")
    fig.add(Series("tuned", [r["mtu"] for r in rows],
                   [r["goodput_gbps"] for r in rows]))
    return ExperimentOutput(
        experiment="mtu_scan",
        text=fig.render() + "\n\n" + format_table(rows),
        data={"rows": rows})


@_register("fast_tcp")
def _fast_tcp(quick: bool = True) -> ExperimentOutput:
    """Beyond the paper: FAST TCP (the co-authors' follow-up) vs Reno
    on the record path — the fix for Table 1's recovery times."""
    from repro.analysis.tables import format_table
    from repro.tcp.fast import simulate_fluid_fast
    from repro.tcp.fluid import FluidParams, simulate_fluid

    bdp = Gbps(2.38) * 0.18 / 8.0
    duration = 600.0 if quick else 1800.0
    rows = []
    for queue in (200, 400, 1024):
        p = FluidParams(bottleneck_bps=Gbps(2.38), base_rtt_s=0.18,
                        mss=8948, max_window_bytes=4 * bdp,
                        queue_packets=queue)
        reno = simulate_fluid(p, duration, warmup_s=duration / 5)
        # FAST's alpha (target standing queue) must fit the buffer
        from repro.tcp.fast import FastParams
        fast = simulate_fluid_fast(
            p, duration, warmup_s=duration / 5,
            fast=FastParams(alpha_packets=min(200.0, queue / 2.0)))
        rows.append({
            "bottleneck queue (pkts)": queue,
            "Reno Gb/s": round(reno.mean_throughput_bps / 1e9, 2),
            "Reno losses": reno.losses,
            "FAST Gb/s": round(fast.mean_throughput_bps / 1e9, 2),
            "FAST losses": fast.losses,
        })
    return ExperimentOutput(
        experiment="fast_tcp",
        text=format_table(rows, title="Reno vs FAST on the Sunnyvale-"
                          "Geneva path, uncapped 4xBDP windows"),
        data={"rows": rows})


@_register("validation")
def _validation(quick: bool = True) -> ExperimentOutput:
    """Cross-validation: analytic shortcuts vs the packet-level DES."""
    from repro.analysis.tables import format_kv, format_table
    from repro.analysis.validation import cross_validate

    report = cross_validate(count=256 if quick else 1024)
    text = (format_table(report.rows(),
                         title="Analytic model vs packet-level DES")
            + "\n\n"
            + format_kv({
                "mean relative error": report.mean_error(),
                "max relative error": report.max_error(),
                "rank agreement": report.rank_agreement(),
            }))
    return ExperimentOutput(experiment="validation", text=text,
                            data={"report": report})


@_register("stackprofile")
def _stackprofile(quick: bool = True) -> ExperimentOutput:
    """§5 follow-on: where the time goes, per segment, per config."""
    from repro.analysis.stackprofile import StackProfiler
    from repro.analysis.tables import format_table

    profiler = StackProfiler()
    configs = {
        "stock 1500": TuningConfig.stock(1500),
        "stock 9000": TuningConfig.stock(9000),
        "tuned 9000": TuningConfig.fully_tuned(9000),
        "tuned 8160": TuningConfig.fully_tuned(8160),
        "header split": TuningConfig.with_header_splitting(8160),
        "os bypass": TuningConfig.os_bypass_projection(9000),
    }
    summary = profiler.compare(configs)
    detail = profiler.profile(TuningConfig.fully_tuned(8160))
    text = (format_table(summary, title="Per-segment cost accounting "
                         "(the §5 'high-resolution picture')")
            + "\n\n"
            + format_table(detail.rows(),
                           title=f"Stage breakdown: {detail.config_label}"
                                 f" @ {detail.payload} B"))
    return ExperimentOutput(experiment="stackprofile", text=text,
                            data={"summary": summary, "detail": detail})


@_register("comparison")
def _comparison(quick: bool = True) -> ExperimentOutput:
    """§3.5.4: measured 10GbE vs published peers."""
    from repro.analysis.tables import format_table
    from repro.core.bottleneck import BottleneckStudy
    from repro.core.comparison import InterconnectComparison
    from repro.core.latencyreport import LatencyStudy

    single = BottleneckStudy().single_flow()
    latency = LatencyStudy(iterations=4).measure(
        5.0, False, payloads=(1,)).base_latency_us
    comp = InterconnectComparison(tengbe_bps=single,
                                  tengbe_latency_s=latency * 1e-6)
    rows = comp.rows()
    # measure our own GbE lane too (the published 0.99 Gb/s baseline)
    from repro.net.topology import BackToBack
    from repro.sim.engine import Environment
    from repro.tcp.connection import TcpConnection
    from repro.tools.nttcp import nttcp_run

    env = Environment()
    gbe = BackToBack.create(env, TuningConfig.oversized_windows(1500),
                            rate_bps=Gbps(1))
    gbe_conn = TcpConnection(env, gbe.a, gbe.b)
    gbe_bps = nttcp_run(env, gbe_conn, 1448,
                        512 if quick else 2048).goodput_bps
    header = (f"§3.5.4: 10GbE measured {single / 1e9:.2f} Gb/s,"
              f" {latency:.1f} us vs peers"
              f" (our simulated GbE lane: {gbe_bps / 1e9:.2f} Gb/s,"
              " published 0.99)")
    return ExperimentOutput(
        experiment="comparison",
        text=format_table(rows, title=header),
        data={"comparison": comp, "rows": rows, "gbe_bps": gbe_bps,
              "tengbe_bps": single, "latency_us": latency})


# ---------------------------------------------------------------------------
# Fabric-scale scenarios: incast / all-to-all / bisection sweeps
# ---------------------------------------------------------------------------

#: flow-count sweeps for the fabric experiments (quick vs paper-scale)
_FABRIC_QUICK_FLOWS = (16, 64, 256)
_FABRIC_FULL_FLOWS = (16, 64, 256, 1024, 4096)


def _fabric_point(task: tuple) -> Dict[str, Any]:
    """One fabric sweep point (module-level for the parallel runner)."""
    from repro.net.fabric import build_fat_tree, build_torus3d
    from repro.net.hybrid import (FabricSimulation, alltoall_pairs,
                                  bisection_pairs, incast_pairs)

    workload, n_flows, duration_s = task
    if workload == "bisection":
        topo = build_torus3d(4, 4, 4)
        pairs = bisection_pairs(topo, n_flows)
    else:
        topo = build_fat_tree(8)
        gen = incast_pairs if workload == "incast" else alltoall_pairs
        pairs = gen(topo, n_flows)
    sim = FabricSimulation(topo, pairs, n_foreground=8)
    r = sim.run(duration_s=duration_s)
    return {
        "flows": n_flows,
        "mode": r.mode,
        "aggregate_gbps": round(r.aggregate_goodput_gbps, 3),
        "foreground_gbps": round(r.foreground_goodput_bps / 1e9, 3),
        "background_gbps": round(r.background_goodput_bps / 1e9, 3),
        "drops": r.foreground_drops,
        "fluid_losses": r.fluid_losses,
        # deterministic proxy for cost (wall time would break the
        # bit-identical serial-vs-parallel parity contract)
        "des_events": r.events_scheduled,
    }


def _fabric_experiment(workload: str, quick: bool,
                       title: str) -> ExperimentOutput:
    from repro.analysis.tables import format_table

    flows = _FABRIC_QUICK_FLOWS if quick else _FABRIC_FULL_FLOWS
    duration_s = 0.02 if quick else 0.1
    rows = SweepRunner().map(
        _fabric_point, [(workload, n, duration_s) for n in flows],
        cache_ns=f"fabric-{workload}")
    return ExperimentOutput(
        experiment=workload,
        text=format_table(rows, title=title),
        data={"rows": rows, "duration_s": duration_s})


@_register("incast")
def _incast(quick: bool = True) -> ExperimentOutput:
    """Fabric incast: N senders converge on one fat-tree host — the
    many-clients aggregation of Fig. 2(c) pushed to cluster scale via
    the hybrid fluid+DES fast path (see docs/FABRICS.md)."""
    return _fabric_experiment(
        "incast", quick,
        "Fabric incast (k=8 fat-tree, N senders -> 1 server)")


@_register("alltoall")
def _alltoall(quick: bool = True) -> ExperimentOutput:
    """Fabric all-to-all: flows cycling over every ordered host pair of
    a k=8 fat-tree (the MPI collective / shuffle pattern)."""
    return _fabric_experiment(
        "alltoall", quick,
        "Fabric all-to-all (k=8 fat-tree, ordered host pairs)")


@_register("bisection")
def _bisection(quick: bool = True) -> ExperimentOutput:
    """Fabric bisection: mirror-pair flows across a 4x4x4 torus cut
    (the APENet/PACS-CS LQCD fabric shape)."""
    return _fabric_experiment(
        "bisection", quick,
        "Fabric bisection (4x4x4 torus, mirror pairs across the cut)")


@_register("wan")
def _wan(quick: bool = True) -> ExperimentOutput:
    """§4: the Land Speed Record run + buffer sweep + DES cross-check."""
    from repro.analysis.tables import format_kv, format_table
    from repro.core.wanrecord import WanRecordRun

    run = WanRecordRun()
    tuned = run.run_fluid(duration_s=600.0 if quick else 3600.0)
    sweep = run.buffer_sweep(duration_s=120.0 if quick else 600.0)
    des = run.run_des_scaled(scale=0.02 if quick else 0.1,
                             duration_s=2.0 if quick else 6.0)
    multi = run.run_fluid_multiflow(n_flows=8,
                                    duration_s=300.0 if quick else 600.0)
    summary = {
        "tuned_gbps (paper 2.38)": tuned.throughput_gbps,
        "payload_efficiency (paper ~0.99)": tuned.payload_efficiency,
        "terabyte_minutes (paper <60)": tuned.terabyte_time_s / 60.0,
        "lsr_metric (paper 2.3888e16)": tuned.lsr_metric,
        "x_previous_record (paper 2.5)": tuned.beats_previous_record,
        "des_crosscheck_gbps": des.throughput_gbps,
        "multistream_8_gbps (LSR multi-stream category)":
            multi.throughput_gbps,
    }
    rows = [{"buffer": o.label, "gbps": o.throughput_gbps,
             "losses": o.losses} for o in sweep]
    return ExperimentOutput(
        experiment="wan",
        text=(format_kv(summary, "§4 WAN record") + "\n\n"
              + format_table(rows, title="buffer sweep")),
        data={"tuned": tuned, "sweep": sweep, "des": des,
              "multi": multi, "summary": summary})
