"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables and
figure captions report; these helpers keep that output aligned and
dependency-free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_cell(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header, *body = table
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, Any], title: str = "") -> str:
    """Render key/value pairs one per line, aligned."""
    if not pairs:
        return f"{title}\n(empty)" if title else "(empty)"
    width = max(len(str(k)) for k in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)}  {_cell(value)}")
    return "\n".join(lines)
