"""Figure data containers: named x/y series with text rendering.

The reproduction regenerates figure *data* (the series the paper
plots); :meth:`Figure.render` draws a coarse ASCII chart so benchmark
output is inspectable without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import MeasurementError

__all__ = ["Series", "Figure"]


@dataclass
class Series:
    """One plotted line."""

    label: str
    x: Sequence[float]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise MeasurementError(
                f"series {self.label!r}: x and y lengths differ")
        if not len(self.x):
            raise MeasurementError(f"series {self.label!r} is empty")

    @property
    def peak(self) -> float:
        """Largest y value."""
        return float(np.max(self.y))

    @property
    def mean(self) -> float:
        """Mean y value."""
        return float(np.mean(self.y))


@dataclass
class Figure:
    """A named collection of series (one paper figure)."""

    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)

    def add(self, series: Series) -> None:
        """Append a line."""
        self.series.append(series)

    def render(self, width: int = 72, height: int = 16) -> str:
        """ASCII plot: one glyph per series, shared axes."""
        if not self.series:
            raise MeasurementError(f"figure {self.title!r} has no series")
        glyphs = "*o+x#@%&"
        xs = np.concatenate([np.asarray(s.x, float) for s in self.series])
        ys = np.concatenate([np.asarray(s.y, float) for s in self.series])
        x0, x1 = float(xs.min()), float(xs.max())
        y0, y1 = 0.0, float(ys.max()) * 1.05
        if x1 <= x0 or y1 <= y0:
            raise MeasurementError("degenerate axes")
        grid = [[" "] * width for _ in range(height)]
        for si, s in enumerate(self.series):
            glyph = glyphs[si % len(glyphs)]
            for xv, yv in zip(s.x, s.y):
                col = int((xv - x0) / (x1 - x0) * (width - 1))
                row = int((yv - y0) / (y1 - y0) * (height - 1))
                grid[height - 1 - row][col] = glyph
        lines = [self.title]
        for i, row in enumerate(grid):
            yv = y1 - i * (y1 - y0) / (height - 1)
            lines.append(f"{yv:10.2f} |" + "".join(row))
        lines.append(" " * 11 + "+" + "-" * width)
        lines.append(f"{'':11}{x0:<12.0f}{self.xlabel:^{width - 24}}{x1:>12.0f}")
        for si, s in enumerate(self.series):
            lines.append(f"  {glyphs[si % len(glyphs)]} = {s.label}")
        return "\n".join(lines)
