"""Reporting: tables, figure series and the experiment registry."""

from repro.analysis.tables import format_table, format_kv
from repro.analysis.figures import Series, Figure
from repro.analysis.experiments import EXPERIMENTS, run_experiment, experiment_ids

__all__ = [
    "format_table",
    "format_kv",
    "Series",
    "Figure",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]
