"""Resilience report: the §5 "one loss ruins the record" experiment.

The paper's land-speed-record run moved 2×10^7 packets without a single
loss — and had to, because one drop would have halved Reno's ~36k-
segment window and linear 1-MSS-per-RTT regrowth at 180 ms RTT takes on
the order of **1.5 hours** (Table 1's back-of-envelope; exactly 55
minutes with one ACK per segment, ~1.8 h under delayed ACKs).

:func:`wan_loss_report` reproduces that thought experiment end to end:
run the record configuration through the fluid model, force a single
loss, and hand the goodput series to the chaos analyzer's scorecard.
The measured time-to-recover lands on the analytic value, which in turn
brackets the paper's quoted ~1.5 hours.

This module is the ``analysis/``-layer face of :mod:`repro.chaos`; the
generic machinery (plans, injection, scoring) lives there, the worked
WAN narrative lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.chaos.analyzer import (FaultRecovery, FaultWindow,
                                  analyze_goodput, render_scorecard)
from repro.core.wanrecord import RTT_S, WanRecordRun
from repro.tcp.analytic import recovery_time_s
from repro.tcp.fluid import FluidParams, simulate_fluid
from repro.tcp.window import window_from_space

__all__ = ["ResilienceReport", "wan_loss_report", "score_series"]


@dataclass
class ResilienceReport:
    """Printable report plus the raw numbers behind it."""

    text: str
    data: Dict[str, Any]
    recoveries: List[FaultRecovery]


def score_series(time_s: Sequence[float], goodput_bps: Sequence[float],
                 faults: Sequence[Any],
                 recovered_fraction: float = 0.95,
                 title: str = "Resilience scorecard") -> ResilienceReport:
    """Score any goodput series against any fault list.

    ``faults`` accepts everything :func:`~repro.chaos.analyzer.
    analyze_goodput` does — plan specs, injector ``summary()`` rows,
    ``(start, end)`` pairs.
    """
    recoveries = analyze_goodput(time_s, goodput_bps, faults,
                                 recovered_fraction=recovered_fraction)
    data = {
        "recoveries": [vars(rec) if not hasattr(rec, "__dataclass_fields__")
                       else {f: getattr(rec, f)
                             for f in rec.__dataclass_fields__}
                       for rec in recoveries],
        "recovered_fraction": recovered_fraction,
    }
    return ResilienceReport(text=render_scorecard(recoveries, title=title),
                            data=data, recoveries=recoveries)


def wan_loss_report(mtu: int = 1500, loss_at_s: float = 300.0,
                    duration_s: Optional[float] = None,
                    recovered_fraction: float = 0.99) -> ResilienceReport:
    """One forced loss on the record run's path, scored end to end.

    ``mtu`` defaults to standard Ethernet: the paper's back-of-envelope
    reasons about ordinary 1500-byte frames (jumbo frames shrink the
    segment count and with it the recovery time ~6x — which the report
    also quantifies analytically).
    """
    run = WanRecordRun(mtu=mtu)
    rate = run.bottleneck_goodput_bps
    analytic_s = recovery_time_s(rate, run.rtt_s, run.mss)
    # Delayed ACKs clock the window up every *other* segment, doubling
    # the regrowth time; the paper's "~1.5 hours" sits between the two.
    analytic_delack_s = 2.0 * analytic_s
    if duration_s is None:
        duration_s = loss_at_s + 1.35 * analytic_s
    params = FluidParams(
        bottleneck_bps=rate,
        base_rtt_s=run.rtt_s,
        mss=run.mss,
        max_window_bytes=window_from_space(run.bdp_buffer_bytes()),
        queue_packets=run.queue_frames)
    result = simulate_fluid(params, duration_s=duration_s,
                            warmup_s=min(30.0, loss_at_s / 2.0),
                            force_loss_at_s=loss_at_s)
    fault = FaultWindow(start_s=loss_at_s, end_s=loss_at_s + run.rtt_s,
                        kind="loss_burst", target="wan.oc48",
                        label="single drop")
    recoveries = analyze_goodput(result.time_s, result.throughput_bps,
                                 [fault],
                                 recovered_fraction=recovered_fraction)
    rec = recoveries[0]
    lines = [
        render_scorecard(recoveries,
                         title=f"WAN single-loss resilience (MTU {mtu}, "
                               f"RTT {run.rtt_s * 1e3:.0f} ms)"),
        "",
        f"baseline goodput        : {rec.baseline_bps / 1e9:.2f} Gb/s "
        f"(paper: 2.38 Gb/s record)",
        f"measured time-to-recover: {rec.time_to_recover_s / 60:.1f} min "
        f"(to {recovered_fraction:.0%} of baseline)",
        f"analytic (Table 1)      : {analytic_s / 60:.1f} min per-segment "
        f"ACKs, {analytic_delack_s / 3600:.2f} h delayed ACKs",
        f"paper back-of-envelope  : ~1.5 hours — one loss event forfeits "
        f"the record",
    ]
    data = {
        "mtu": mtu,
        "mss": run.mss,
        "rtt_s": run.rtt_s,
        "bottleneck_bps": rate,
        "loss_at_s": loss_at_s,
        "duration_s": duration_s,
        "losses": result.losses,
        "baseline_bps": rec.baseline_bps,
        "trough_bps": rec.trough_bps,
        "time_to_recover_s": rec.time_to_recover_s,
        "recovered": rec.recovered,
        "goodput_lost_bits": rec.goodput_lost_bits,
        "score": rec.score,
        "analytic_recovery_s": analytic_s,
        "analytic_recovery_delack_s": analytic_delack_s,
    }
    return ResilienceReport(text="\n".join(lines), data=data,
                            recoveries=recoveries)


#: Re-exported for convenience in reports.
PAPER_RTT_S = RTT_S
