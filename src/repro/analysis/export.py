"""Exports: CSV/JSON emitters for figures, curves and tables.

The ASCII renderings are for terminals; downstream users who want to
plot the reproduced figures against the paper's scans need the raw
series.  These helpers write dependency-free CSV/JSON from the same
objects the experiments return.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.figures import Figure, Series
from repro.errors import MeasurementError

__all__ = ["figure_to_csv", "rows_to_csv", "rows_to_json",
           "sweep_to_rows", "write_text"]

PathLike = Union[str, pathlib.Path]


def figure_to_csv(figure: Figure, path: Optional[PathLike] = None) -> str:
    """Long-format CSV (series,x,y) for one figure; returns the text and
    optionally writes it."""
    if not figure.series:
        raise MeasurementError(f"figure {figure.title!r} has no series")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["series", figure.xlabel, figure.ylabel])
    for series in figure.series:
        for x, y in zip(series.x, series.y):
            writer.writerow([series.label, x, y])
    return write_text(buf.getvalue(), path)


def rows_to_csv(rows: Sequence[Mapping[str, Any]],
                path: Optional[PathLike] = None,
                columns: Optional[Sequence[str]] = None) -> str:
    """Dict-rows (the experiments' table format) to CSV."""
    if not rows:
        raise MeasurementError("no rows to export")
    if columns is None:
        columns = list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(columns),
                            extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return write_text(buf.getvalue(), path)


def rows_to_json(rows: Sequence[Mapping[str, Any]],
                 path: Optional[PathLike] = None) -> str:
    """Dict-rows to pretty JSON."""
    if not rows:
        raise MeasurementError("no rows to export")
    text = json.dumps(list(rows), indent=2, default=str) + "\n"
    return write_text(text, path)


def sweep_to_rows(curve) -> list:
    """An NTTCP :class:`~repro.core.casestudy.SweepCurve` as dict-rows."""
    return [{
        "config": curve.label,
        "payload": point.payload,
        "goodput_gbps": point.goodput_gbps,
        "receiver_load": point.receiver_load,
        "sender_load": point.sender_load,
    } for point in curve.points]


def write_text(text: str, path: Optional[PathLike]) -> str:
    """Write ``text`` to ``path`` when given; always return the text."""
    if path is not None:
        pathlib.Path(path).write_text(text)
    return text
