"""Declarative fault plans: what breaks, where, when, and how badly.

A :class:`FaultPlan` is a seeded, serializable description of every
fault a run should suffer — the paper's "one loss event over the
Sunnyvale–Geneva path ruins the record run" thought experiment becomes a
three-line JSON file instead of ad-hoc tap wiring.  Plans are pure data
(frozen dataclasses), load from JSON/dicts, and carry a stable
:meth:`~FaultPlan.fingerprint` that the result cache folds into its keys
so chaotic and clean runs can never alias.

The taxonomy (see ``docs/RESILIENCE.md``):

========================  =====================================================
kind                      effect while the fault window is open
========================  =====================================================
``link_flap``             the link goes dark — every matching frame is lost
``loss_burst``            each matching frame is dropped with ``probability``
``corruption``            like loss, but accounted as FCS-discarded frames
``duplicate``             each matching frame is delivered twice w.p. ``p``
``reorder_window``        frames are held ``delay_s`` w.p. ``p`` (overtaking)
``buffer_degrade``        router/switch queue capacity is scaled by ``factor``
``nic_stall``             the adapter freezes; rx frames park until recovery
``nic_reset``             rx ring cleared at onset, ingress dropped throughout
``cpu_contention``        a competing load steals ``factor`` of the host CPU
========================  =====================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Tuple, Union

from repro.errors import ChaosError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: Every fault kind the injector knows how to arm.
FAULT_KINDS: Tuple[str, ...] = (
    "link_flap", "loss_burst", "reorder_window", "corruption", "duplicate",
    "buffer_degrade", "nic_stall", "nic_reset", "cpu_contention",
)

#: Target categories each kind may bind to (used by the injector's
#: matcher; kept here so plan validation can reject bad ``target``
#: category prefixes without importing the injector).
KIND_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "link_flap": ("link",),
    "loss_burst": ("link",),
    "reorder_window": ("link",),
    "corruption": ("link",),
    "duplicate": ("link",),
    "buffer_degrade": ("router", "switch_port"),
    "nic_stall": ("nic",),
    "nic_reset": ("nic",),
    "cpu_contention": ("cpu",),
}

#: All registrable target categories.
CATEGORIES: Tuple[str, ...] = ("link", "router", "switch_port", "nic", "cpu")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        ``fnmatch`` glob over component names, optionally prefixed with
        a category — ``"wan.oc48*"``, ``"link:b2b*"``, ``"nic:*"``.
    start_s / duration_s:
        The fault window ``[start_s, start_s + duration_s)`` in
        simulation seconds.  A frame delivered exactly at the window's
        opening instant is affected; one at the closing instant is not.
    probability:
        Per-frame chance the fault acts (drawn from the fault's own
        seeded stream; irrelevant to window-level kinds such as
        ``buffer_degrade``).
    delay_s:
        Hold time for ``reorder_window``.
    factor:
        Scale knob: queue-capacity multiplier for ``buffer_degrade``,
        stolen CPU fraction for ``cpu_contention``.
    kinds:
        Frame kinds the fault applies to (``("data",)``, ``("ack",)``,
        or ``("*",)`` for every frame).
    label:
        Free-form note carried into telemetry and the scorecard.
    """

    kind: str
    target: str
    start_s: float
    duration_s: float
    probability: float = 1.0
    delay_s: float = 0.0
    factor: float = 1.0
    kinds: Tuple[str, ...] = ("data",)
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ChaosError(f"unknown fault kind {self.kind!r}; expected "
                             f"one of {FAULT_KINDS}")
        if not self.target:
            raise ChaosError("fault target glob cannot be empty")
        if ":" in self.target:
            prefix = self.target.split(":", 1)[0]
            if prefix not in CATEGORIES:
                raise ChaosError(
                    f"unknown target category {prefix!r}; expected one of "
                    f"{CATEGORIES}")
            if prefix not in KIND_CATEGORIES[self.kind]:
                raise ChaosError(
                    f"fault kind {self.kind!r} cannot target category "
                    f"{prefix!r} (allowed: {KIND_CATEGORIES[self.kind]})")
        if self.start_s < 0:
            raise ChaosError(f"start_s must be >= 0, got {self.start_s!r}")
        if self.duration_s <= 0:
            raise ChaosError(
                f"duration_s must be > 0, got {self.duration_s!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ChaosError(
                f"probability must be in [0, 1], got {self.probability!r}")
        if self.delay_s < 0:
            raise ChaosError(f"delay_s must be >= 0, got {self.delay_s!r}")
        if self.factor <= 0:
            raise ChaosError(f"factor must be > 0, got {self.factor!r}")
        if not self.kinds:
            raise ChaosError("kinds cannot be empty; use ('*',) for all")
        object.__setattr__(self, "kinds", tuple(self.kinds))

    @property
    def end_s(self) -> float:
        """Closing instant of the fault window."""
        return self.start_s + self.duration_s

    @property
    def category(self) -> str:
        """Explicit target category, or ``""`` when the glob is bare."""
        return self.target.split(":", 1)[0] if ":" in self.target else ""

    @property
    def name_glob(self) -> str:
        """The component-name glob with any category prefix stripped."""
        return (self.target.split(":", 1)[1] if ":" in self.target
                else self.target)

    def matches_frame_kind(self, frame_kind: str) -> bool:
        """Whether a frame of ``frame_kind`` is subject to this fault."""
        return "*" in self.kinds or frame_kind in self.kinds

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (inverse of :meth:`from_dict`)."""
        out = dataclasses.asdict(self)
        out["kinds"] = list(self.kinds)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ChaosError(f"fault spec must be a dict, got "
                             f"{type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ChaosError(f"unknown fault spec field(s): "
                             f"{', '.join(unknown)}")
        kwargs = dict(data)
        if "kinds" in kwargs:
            kinds = kwargs["kinds"]
            if isinstance(kinds, str):
                kinds = (kinds,)
            kwargs["kinds"] = tuple(kinds)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ChaosError(f"invalid fault spec: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of :class:`FaultSpec` entries.

    The empty plan is a true no-op: the injector never attaches, no
    events are scheduled, and the cache fingerprint stays absent, so a
    run under an empty plan is byte-identical to a run with chaos off.
    """

    name: str = "plan"
    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ChaosError(f"plan seed must be an int, got {self.seed!r}")
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise ChaosError(
                    f"plan faults must be FaultSpec, got "
                    f"{type(spec).__name__}")

    @property
    def is_empty(self) -> bool:
        """True when the plan carries no faults at all."""
        return not self.faults

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Build a plan from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ChaosError(
                f"fault plan must be a dict, got {type(data).__name__}")
        unknown = sorted(set(data) - {"name", "seed", "faults"})
        if unknown:
            raise ChaosError(f"unknown fault plan field(s): "
                             f"{', '.join(unknown)}")
        faults = data.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise ChaosError("plan 'faults' must be a list")
        return cls(
            name=data.get("name", "plan"),
            seed=data.get("seed", 0),
            faults=tuple(FaultSpec.from_dict(entry) for entry in faults))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"invalid fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "FaultPlan":
        """Load a plan from a JSON file."""
        p = pathlib.Path(path)
        try:
            text = p.read_text()
        except OSError as exc:
            raise ChaosError(f"cannot read fault plan {p}: {exc}") from exc
        return cls.from_json(text)

    def fingerprint(self) -> str:
        """Stable hex digest of the plan's full content.

        Deliberately computed from the canonical JSON form (not object
        identity), so two equal plans — loaded from a file, built in
        code, round-tripped through :meth:`to_dict` — share cache
        entries, while any field change invalidates them.
        """
        canon = json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def with_faults(self, faults: Iterable[FaultSpec]) -> "FaultPlan":
        """A copy of this plan with ``faults`` replaced."""
        return FaultPlan(name=self.name, seed=self.seed,
                         faults=tuple(faults))
