"""The chaos injector: arms a :class:`~repro.chaos.plan.FaultPlan`.

One :class:`ChaosInjector` exists per :class:`~repro.sim.engine.
Environment` while a non-empty plan is active.  Its lifecycle is built
around one determinism rule: **every chaos event is scheduled up-front,
inside ``Environment.__init__``**, so the arm/fire/recover callbacks own
the lowest sequence numbers at their instants and win FIFO ties against
any frame delivery scheduled later.  Consequences:

* a frame delivered exactly at a window's opening instant is faulted,
  one at the closing instant is not — on both schedulers and both data
  paths, because tie-breaks are by ``(time, seq)`` everywhere;
* an empty plan schedules nothing and registers nothing, so the run is
  byte-identical to chaos-off (sequence numbers included);
* per-fault randomness comes from named :class:`~repro.sim.rng.
  RngStreams` sub-streams, so adding a fault never perturbs another
  fault's draws.

Activation mirrors telemetry: :func:`chaos_session` swaps the session
into the module-global hook slot (fork-inherited by sweep workers), or
``REPRO_CHAOS=/plan.json`` loads one ambiently.  Activate **before**
building the environment and topology — components discover the session
in their constructors.
"""

from __future__ import annotations

import contextlib
import weakref
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.chaos.plan import CATEGORIES, KIND_CATEGORIES, FaultPlan, FaultSpec
from repro.chaos.taps import SinkTap
from repro.errors import ChaosError
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBuffer
from repro.telemetry.session import active_bus, active_metrics, register_trace

__all__ = ["ArmedFault", "ChaosInjector", "ChaosSession", "chaos_session"]

#: Sub-intervals a ``cpu_contention`` window is charged in; many small
#: slices interleave with real protocol work like a competing process
#: would, instead of one monolithic stall.
CPU_SLICES = 16


class ArmedFault:
    """Runtime state of one :class:`~repro.chaos.plan.FaultSpec`."""

    __slots__ = ("index", "spec", "rng", "taps", "queues", "cpus", "nics",
                 "matched", "fired_at", "recovered_at", "frames", "drops",
                 "holds", "dups", "corrupts", "_saved_capacity")

    def __init__(self, index: int, spec: FaultSpec, rng):
        self.index = index
        self.spec = spec
        self.rng = rng
        self.taps: List[SinkTap] = []
        self.queues: List[Any] = []
        self.cpus: List[Any] = []
        self.nics: List[Any] = []
        self.matched: List[str] = []
        self.fired_at: Optional[float] = None
        self.recovered_at: Optional[float] = None
        self.frames = 0
        self.drops = 0
        self.holds = 0
        self.dups = 0
        self.corrupts = 0
        self._saved_capacity: List[Tuple[Any, Any]] = []

    def summary(self) -> Dict[str, Any]:
        """Per-fault scorecard row (consumed by the recovery analyzer)."""
        spec = self.spec
        return {
            "index": self.index,
            "kind": spec.kind,
            "target": spec.target,
            "label": spec.label,
            "start_s": spec.start_s,
            "duration_s": spec.duration_s,
            "matched": list(self.matched),
            "fired": self.fired_at is not None,
            "recovered": self.recovered_at is not None,
            "frames": self.frames,
            "drops": self.drops,
            "holds": self.holds,
            "dups": self.dups,
            "corrupts": self.corrupts,
        }


class ChaosInjector:
    """Schedules and applies one plan against one environment."""

    def __init__(self, env, plan: FaultPlan):
        self.env = env
        self.plan = plan
        self._streams = RngStreams(plan.seed)
        self.trace = TraceBuffer()
        register_trace("chaos", self.trace)
        # Live streaming: arm/fire/recover land on the bus the moment
        # they happen, independent of trace collection cadence — chaos
        # windows are exactly what an observer is watching for.
        self._bus = active_bus()
        metrics = active_metrics()
        self._c_fired = (metrics.counter("chaos.faults.fired")
                         if metrics is not None else None)
        self._c_recovered = (metrics.counter("chaos.faults.recovered")
                             if metrics is not None else None)
        self.armed: List[ArmedFault] = [
            ArmedFault(i, spec, self._streams.get(f"fault{i}"))
            for i, spec in enumerate(plan.faults)]
        self._publish("plan_armed", None, faults=len(self.armed),
                      seed=plan.seed, fingerprint=plan.fingerprint())
        self.unmatched: List[int] = []
        self._targets: List[Tuple[str, str, Any]] = []
        self._taps: Dict[int, SinkTap] = {}
        # Up-front scheduling: these events exist before any traffic, so
        # they outrank same-instant deliveries in (time, seq) order.
        now = env.now
        env.schedule_call_at(now, self._arm_all)
        for armed in self.armed:
            start = max(now, armed.spec.start_s)
            env.schedule_call_at(start, self._fire, armed)
            env.schedule_call_at(max(start, armed.spec.end_s),
                                 self._recover, armed)

    def _publish(self, event: str, armed: Optional[ArmedFault],
                 **fields: Any) -> None:
        """Publish one chaos lifecycle event onto the live bus (no-op
        without an active bus or consumers)."""
        bus = self._bus
        if bus is None:
            return
        payload: Dict[str, Any] = {"event": event, "time": self.env.now}
        if armed is not None:
            spec = armed.spec
            payload.update(fault=armed.index, fault_kind=spec.kind,
                           target=spec.target, label=spec.label,
                           start_s=spec.start_s, duration_s=spec.duration_s)
        payload.update(fields)
        bus.publish("chaos", payload)

    # -- target registry ------------------------------------------------------
    def register_target(self, category: str, name: str, obj: Any) -> None:
        """Record a component for fault-target matching."""
        if category not in CATEGORIES:
            raise ChaosError(f"unknown target category {category!r}")
        self._targets.append((category, name, obj))

    def _match(self, spec: FaultSpec) -> List[Tuple[str, str, Any]]:
        categories = ((spec.category,) if spec.category
                      else KIND_CATEGORIES[spec.kind])
        glob = spec.name_glob
        return [(cat, name, obj) for cat, name, obj in self._targets
                if cat in categories and fnmatchcase(name, glob)]

    # -- lifecycle callbacks --------------------------------------------------
    def _arm_all(self) -> None:
        """t=0: resolve targets and splice the permanent sink wrappers.

        Wrappers go in before any frame is in flight; the windows gate
        them afterwards.  Unmatched faults are recorded, traced and
        skipped — a plan written for one topology must not crash a
        different experiment.
        """
        now = self.env.now
        for armed in self.armed:
            spec = armed.spec
            targets = self._match(spec)
            if not targets:
                self.unmatched.append(armed.index)
                self.trace.post(now, "chaos.unmatched", armed.index,
                                kind=spec.kind, target=spec.target)
                self._publish("unmatched", armed)
                continue
            for category, name, obj in targets:
                if category == "link":
                    tap = self._tap_link(obj, name)
                    if tap is not None:
                        armed.taps.append(tap)
                        armed.matched.append(name)
                elif category == "nic":
                    armed.taps.append(self._tap_nic(obj, name))
                    armed.nics.append(obj)
                    armed.matched.append(name)
                elif category in ("router", "switch_port"):
                    armed.queues.append(obj)
                    armed.matched.append(name)
                elif category == "cpu":
                    armed.cpus.append(obj)
                    armed.matched.append(name)
            self.trace.post(now, "chaos.fault_armed", armed.index,
                            kind=spec.kind, target=spec.target,
                            matched=len(armed.matched))
            self._publish("armed", armed, matched=list(armed.matched))

    def _tap_link(self, link, name: str) -> Optional[SinkTap]:
        tap = self._taps.get(id(link))
        if tap is None:
            sink = getattr(link, "sink", None)
            if sink is None:
                return None  # never connected; nothing can traverse it
            tap = SinkTap(self, "link", name, sink.receive_frame)
            link.connect(tap)
            self._taps[id(link)] = tap
        return tap

    def _tap_nic(self, nic, name: str) -> SinkTap:
        tap = self._taps.get(id(nic))
        if tap is None:
            # Capture the original bound method, then shadow it with an
            # instance attribute — both data paths look the attribute up
            # per frame, so they see the wrapper identically.
            tap = SinkTap(self, "nic", name, nic.receive_frame)
            nic.receive_frame = tap.receive_frame
            self._taps[id(nic)] = tap
        return tap

    def _fire(self, armed: ArmedFault) -> None:
        if not armed.matched:
            return
        env = self.env
        spec = armed.spec
        armed.fired_at = env.now
        for tap in armed.taps:
            tap.arm(armed)
        if spec.kind == "buffer_degrade":
            for holder in armed.queues:
                queue = holder.queue
                armed._saved_capacity.append((queue, queue.capacity))
                queue.capacity = max(1, int(round(queue.capacity
                                                  * spec.factor)))
        elif spec.kind == "nic_reset":
            for nic in armed.nics:
                armed.drops += len(nic._rx_pending)
                nic._rx_pending.clear()
        elif spec.kind == "cpu_contention":
            slice_s = spec.duration_s / CPU_SLICES
            steal = slice_s * min(1.0, spec.factor)
            for cpu in armed.cpus:
                for k in range(CPU_SLICES):
                    env.schedule_call(k * slice_s, self._steal, cpu, steal)
        if self._c_fired is not None:
            self._c_fired.inc()
        self.trace.post(env.now, "chaos.fault_fired", armed.index,
                        kind=spec.kind, target=spec.target)
        self._publish("fired", armed)

    def _steal(self, cpu, cost_s: float) -> None:
        cpu.timeline.charge(cost_s)

    def _recover(self, armed: ArmedFault) -> None:
        if armed.fired_at is None:
            return
        armed.recovered_at = self.env.now
        for tap in armed.taps:
            tap.disarm(armed)
        for queue, capacity in armed._saved_capacity:
            queue.capacity = capacity
        armed._saved_capacity.clear()
        if self._c_recovered is not None:
            self._c_recovered.inc()
        self.trace.post(self.env.now, "chaos.fault_recovered", armed.index,
                        kind=armed.spec.kind, target=armed.spec.target)
        self._publish("recovered", armed, frames=armed.frames,
                      drops=armed.drops, holds=armed.holds, dups=armed.dups)

    # -- reporting ------------------------------------------------------------
    def summary(self) -> List[Dict[str, Any]]:
        """Scorecard rows for every fault in plan order."""
        return [armed.summary() for armed in self.armed]


class ChaosSession:
    """One activated plan, shared by every environment built under it.

    Injectors are held in a :class:`weakref.WeakKeyDictionary` so
    long-lived ambient sessions (``REPRO_CHAOS``) never pin dead
    environments in memory.
    """

    def __init__(self, plan: FaultPlan):
        if not isinstance(plan, FaultPlan):
            raise ChaosError(
                f"expected a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self._injectors: "weakref.WeakKeyDictionary[Any, ChaosInjector]" = (
            weakref.WeakKeyDictionary())

    def attach_environment(self, env: Any) -> None:
        """Create (and schedule) this plan's injector for ``env``."""
        if self.plan.is_empty:
            return
        self._injectors[env] = ChaosInjector(env, self.plan)

    def register_target(self, category: str, name: str, obj: Any) -> None:
        """Route a component registration to its environment's injector."""
        env = getattr(obj, "env", None)
        if env is None:
            return
        injector = self._injectors.get(env)
        if injector is not None:
            injector.register_target(category, name, obj)

    def injector_for(self, env: Any) -> Optional[ChaosInjector]:
        """The injector attached to ``env``, if any."""
        return self._injectors.get(env)

    @property
    def injectors(self) -> List[ChaosInjector]:
        """All live injectors, construction order not guaranteed."""
        return list(self._injectors.values())


@contextlib.contextmanager
def chaos_session(plan: Union[FaultPlan, Dict[str, Any], str, Any]
                  ) -> Iterator[ChaosSession]:
    """Activate ``plan`` for the duration of the block.

    ``plan`` may be a :class:`FaultPlan`, a plain dict, or a path to a
    JSON file.  Like :func:`~repro.telemetry.session.telemetry_session`,
    enter the context **before** building environments/topologies.
    """
    from repro.chaos import hooks
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    elif not isinstance(plan, FaultPlan):
        plan = FaultPlan.load(plan)
    if hooks._ACTIVE is not None:
        raise ChaosError("a chaos session is already active")
    session = ChaosSession(plan)
    hooks._ACTIVE = session
    try:
        yield session
    finally:
        hooks._ACTIVE = None
