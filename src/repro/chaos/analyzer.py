"""Recovery analyzer: how badly did a fault hurt, and for how long?

Consumes post-hoc series — a fluid model's ``(time_s, throughput_bps)``
arrays, a DES monitor, or telemetry events — rather than sampling
inside the simulation, so the analysis can never perturb the run (and
cannot introduce train-on/off divergence through same-instant sampling
events).

Per fault the analyzer reports the quantities the paper's §5
back-of-envelope reasons about: the goodput **trough**, the
**time-to-recover** back to a fraction of baseline (for Reno at
2.38 Gb/s over 180 ms RTT this is the infamous ~1.5 hours), the
integral **goodput lost**, the **recovery slope** (Reno's one MSS per
RTT, in bps/s), the **retransmission storm** size, the **cwnd trough**,
and a 0–100 resilience **score** combining availability and recovery
speed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chaos.plan import FaultSpec
from repro.errors import ChaosError

__all__ = ["FaultWindow", "FaultRecovery", "analyze_goodput",
           "count_retransmits", "cwnd_trough", "render_scorecard"]


@dataclass(frozen=True)
class FaultWindow:
    """The minimal description of a fault the analyzer needs."""

    start_s: float
    end_s: float
    kind: str = "fault"
    target: str = "*"
    label: str = ""
    index: int = 0


@dataclass(frozen=True)
class FaultRecovery:
    """Scorecard for one fault.

    ``time_to_recover_s`` is measured from the fault's onset to the
    first sample at or above ``recovered_fraction`` of baseline after
    the trough; ``recovered`` is False (and the lost integral runs to
    the end of the series) when that never happens.
    """

    index: int
    kind: str
    target: str
    label: str
    start_s: float
    end_s: float
    baseline_bps: float
    trough_bps: float
    time_to_recover_s: float
    recovered: bool
    goodput_lost_bits: float
    recovery_slope_bps_per_s: float
    score: int
    retransmits: Optional[int] = None
    cwnd_trough: Optional[float] = None

    @property
    def trough_fraction(self) -> float:
        """Trough goodput as a fraction of baseline."""
        if self.baseline_bps <= 0:
            return 0.0
        return self.trough_bps / self.baseline_bps


def _normalize_fault(entry: Any, position: int) -> FaultWindow:
    if isinstance(entry, FaultWindow):
        return entry
    if isinstance(entry, FaultSpec):
        return FaultWindow(start_s=entry.start_s, end_s=entry.end_s,
                           kind=entry.kind, target=entry.target,
                           label=entry.label, index=position)
    if isinstance(entry, dict):  # an injector summary() row
        start = float(entry["start_s"])
        end = float(entry.get("end_s",
                              start + float(entry.get("duration_s", 0.0))))
        return FaultWindow(start_s=start, end_s=end,
                           kind=entry.get("kind", "fault"),
                           target=entry.get("target", "*"),
                           label=entry.get("label", ""),
                           index=int(entry.get("index", position)))
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return FaultWindow(start_s=float(entry[0]), end_s=float(entry[1]),
                           index=position)
    raise ChaosError(f"cannot interpret fault description {entry!r}")


def analyze_goodput(time_s: Sequence[float], goodput_bps: Sequence[float],
                    faults: Iterable[Any],
                    recovered_fraction: float = 0.95) -> List[FaultRecovery]:
    """Score each fault against a goodput time series.

    ``faults`` entries may be :class:`FaultWindow`, :class:`~repro.
    chaos.plan.FaultSpec`, injector ``summary()`` dicts, or bare
    ``(start_s, end_s)`` pairs.  The series is treated as piecewise
    constant between samples (matching the fluid model's export).
    """
    if not 0.0 < recovered_fraction <= 1.0:
        raise ChaosError(f"recovered_fraction must be in (0, 1], got "
                         f"{recovered_fraction!r}")
    times = [float(t) for t in time_s]
    rates = [float(g) for g in goodput_bps]
    if len(times) != len(rates):
        raise ChaosError("time and goodput series must have equal length")
    if len(times) < 2:
        raise ChaosError("need at least two samples to analyze recovery")
    horizon = times[-1]
    out: List[FaultRecovery] = []
    for position, entry in enumerate(faults):
        fault = _normalize_fault(entry, position)
        out.append(_analyze_one(times, rates, fault, recovered_fraction,
                                horizon))
    return out


def _analyze_one(times: List[float], rates: List[float], fault: FaultWindow,
                 recovered_fraction: float, horizon: float) -> FaultRecovery:
    start = fault.start_s
    # Baseline: time-weighted mean goodput before the fault hits (the
    # record run's steady 2.38 Gb/s); fall back to the series peak when
    # the fault opens at t=0.
    pre_area = 0.0
    pre_span = 0.0
    for i in range(len(times) - 1):
        left, right = times[i], min(times[i + 1], start)
        if right <= left:
            break
        pre_area += rates[i] * (right - left)
        pre_span += right - left
    baseline = pre_area / pre_span if pre_span > 0 else max(rates)
    threshold = recovered_fraction * baseline

    # Trough and recovery are searched from the fault's onset onward.
    first = 0
    while first < len(times) and times[first] < start:
        first += 1
    window = range(first, len(times))
    if first >= len(times):
        # Fault opens after the series ends: nothing to measure.
        return FaultRecovery(
            index=fault.index, kind=fault.kind, target=fault.target,
            label=fault.label, start_s=start, end_s=fault.end_s,
            baseline_bps=baseline, trough_bps=baseline,
            time_to_recover_s=0.0, recovered=True, goodput_lost_bits=0.0,
            recovery_slope_bps_per_s=0.0, score=100)
    trough_idx = min(window, key=lambda i: rates[i])
    trough = rates[trough_idx]
    rec_idx: Optional[int] = None
    for i in range(trough_idx, len(times)):
        if rates[i] >= threshold:
            rec_idx = i
            break
    recovered = rec_idx is not None
    end_idx = rec_idx if rec_idx is not None else len(times) - 1
    ttr = (times[end_idx] - start) if recovered else horizon - start

    # Lost goodput: integral of the baseline shortfall from onset until
    # recovery (or the end of the series).
    lost = 0.0
    for i in range(first, end_idx):
        dt = times[i + 1] - times[i]
        if dt > 0:
            lost += max(0.0, baseline - rates[i]) * dt
    if first > 0 and times[first] > start:
        # partial step between the onset and the first in-window sample
        lost += max(0.0, baseline - rates[first - 1]) * (times[first] - start)

    slope = 0.0
    if recovered and rec_idx is not None and rec_idx > trough_idx:
        span = times[rec_idx] - times[trough_idx]
        if span > 0:
            slope = (rates[rec_idx] - trough) / span

    # Score: availability (how much of the baseline-seconds survived)
    # weighted with recovery speed (how quickly it came back).
    span = max(horizon - start, 1e-12)
    avail = 1.0 - min(1.0, lost / (baseline * span)) if baseline > 0 else 0.0
    speed = (1.0 - min(1.0, ttr / span)) if recovered else 0.0
    score = int(round(100.0 * (0.6 * avail + 0.4 * speed)))

    return FaultRecovery(
        index=fault.index, kind=fault.kind, target=fault.target,
        label=fault.label, start_s=start, end_s=fault.end_s,
        baseline_bps=baseline, trough_bps=trough,
        time_to_recover_s=ttr, recovered=recovered,
        goodput_lost_bits=lost, recovery_slope_bps_per_s=slope,
        score=max(0, min(100, score)))


# -- telemetry enrichment --------------------------------------------------------
def count_retransmits(events: Iterable[Tuple], start_s: float,
                      end_s: float = float("inf")) -> int:
    """Retransmission-storm size: ``tcp.tx.retransmit`` events in
    ``[start_s, end_s)`` of a telemetry session's event list."""
    count = 0
    for _track, time, point, _subject, _detail in events:
        if point == "tcp.tx.retransmit" and start_s <= time < end_s:
            count += 1
    return count


def cwnd_trough(events: Iterable[Tuple], start_s: float,
                end_s: float = float("inf")) -> Optional[float]:
    """Lowest congestion window (segments) reported by
    ``tcp.cwnd.update`` events in ``[start_s, end_s)``, or ``None``."""
    lowest: Optional[float] = None
    for _track, time, point, _subject, detail in events:
        if point == "tcp.cwnd.update" and start_s <= time < end_s:
            cwnd = detail.get("cwnd")
            if cwnd is not None and (lowest is None or cwnd < lowest):
                lowest = float(cwnd)
    return lowest


def enrich_with_telemetry(recoveries: Iterable[FaultRecovery],
                          events: Sequence[Tuple]) -> List[FaultRecovery]:
    """Fill ``retransmits``/``cwnd_trough`` from a telemetry event list
    (each fault's window runs from onset to its recovery instant)."""
    out = []
    for rec in recoveries:
        until = rec.start_s + rec.time_to_recover_s
        out.append(replace(
            rec,
            retransmits=count_retransmits(events, rec.start_s, until),
            cwnd_trough=cwnd_trough(events, rec.start_s, until)))
    return out


# -- rendering -------------------------------------------------------------------
def _fmt_rate(bps: float) -> str:
    if bps >= 1e9:
        return f"{bps / 1e9:.2f} Gb/s"
    if bps >= 1e6:
        return f"{bps / 1e6:.1f} Mb/s"
    return f"{bps / 1e3:.0f} kb/s"


def _fmt_time(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.3g} s"


def render_scorecard(recoveries: Sequence[FaultRecovery],
                     title: str = "Resilience scorecard") -> str:
    """Fixed-width per-fault table for reports and the demo script."""
    header = (f"{'fault':<22} {'baseline':>10} {'trough':>10} "
              f"{'recover':>9} {'lost':>10} {'rtx':>5} {'score':>5}")
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for rec in recoveries:
        name = f"#{rec.index} {rec.kind}"
        if rec.label:
            name += f" ({rec.label})"
        ttr = _fmt_time(rec.time_to_recover_s) if rec.recovered else "never"
        rtx = "-" if rec.retransmits is None else str(rec.retransmits)
        lines.append(
            f"{name[:22]:<22} {_fmt_rate(rec.baseline_bps):>10} "
            f"{_fmt_rate(rec.trough_bps):>10} {ttr:>9} "
            f"{rec.goodput_lost_bits / 8e9:>8.2f}GB {rtx:>5} "
            f"{rec.score:>5}")
    return "\n".join(lines)
