"""Chaos engineering for the reproduction: declarative fault injection.

The paper's §5 record run succeeded *because nothing went wrong*: one
loss event over the 2×10^7-packet Sunnyvale–Geneva path would have
collapsed the Reno window for ~1.5 hours.  This package turns that
observation into a testbed — declare faults in a seeded
:class:`FaultPlan` (JSON or code), arm it with :func:`chaos_session`
(or ``--chaos PLAN.json`` / ``REPRO_CHAOS=PLAN.json``), and score the
stack's recovery with :func:`analyze_goodput`.  See
``docs/RESILIENCE.md``.

Guarantees: a run with no plan (or an empty plan) is bit-identical to a
build without chaos, and a seeded plan produces identical results across
the heap/calendar schedulers and the segment-train on/off data paths.

This module is import-light on purpose — ``sim/engine.py`` and
``cache.py`` import :mod:`repro.chaos.hooks` on their own hot import
paths, which executes this ``__init__`` first; everything heavier loads
lazily through PEP 562.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "FAULT_KINDS", "FaultSpec", "FaultPlan",
    "ChaosSession", "ChaosInjector", "ArmedFault", "chaos_session",
    "FaultWindow", "FaultRecovery", "analyze_goodput", "render_scorecard",
    "count_retransmits", "cwnd_trough", "enrich_with_telemetry",
    "LossTap", "DuplicateTap", "ReorderTap", "SinkTap",
    "CHAOS_ENV", "chaos_active", "active_chaos", "active_plan_fingerprint",
]

_LAZY = {
    "FAULT_KINDS": "repro.chaos.plan",
    "FaultSpec": "repro.chaos.plan",
    "FaultPlan": "repro.chaos.plan",
    "ChaosSession": "repro.chaos.injector",
    "ChaosInjector": "repro.chaos.injector",
    "ArmedFault": "repro.chaos.injector",
    "chaos_session": "repro.chaos.injector",
    "FaultWindow": "repro.chaos.analyzer",
    "FaultRecovery": "repro.chaos.analyzer",
    "analyze_goodput": "repro.chaos.analyzer",
    "render_scorecard": "repro.chaos.analyzer",
    "count_retransmits": "repro.chaos.analyzer",
    "cwnd_trough": "repro.chaos.analyzer",
    "enrich_with_telemetry": "repro.chaos.analyzer",
    "LossTap": "repro.chaos.taps",
    "DuplicateTap": "repro.chaos.taps",
    "ReorderTap": "repro.chaos.taps",
    "SinkTap": "repro.chaos.taps",
    "CHAOS_ENV": "repro.chaos.hooks",
    "chaos_active": "repro.chaos.hooks",
    "active_chaos": "repro.chaos.hooks",
    "active_plan_fingerprint": "repro.chaos.hooks",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
