"""Ambient chaos hooks: how the simulator discovers an active plan.

This module is the only chaos entry point the core simulator imports,
and it is deliberately import-light (stdlib only at module scope) so
``sim/engine.py`` and ``cache.py`` can depend on it without cycles or
startup cost.  It mirrors :mod:`repro.telemetry.session`: the active
:class:`~repro.chaos.injector.ChaosSession` lives in a module global —
not a ``contextvars`` var — so fork-based ``SweepRunner`` workers
inherit it, and every hook degrades to a single ``is None`` test when no
plan is loaded.  That degenerate path is what keeps no-plan runs
bit-identical to a build without chaos at all.

Hooks, in calling order during a run:

* :func:`attach_environment` — from ``Environment.__init__``; creates a
  per-environment :class:`~repro.chaos.injector.ChaosInjector` when a
  non-empty plan is active.
* :func:`register_target` — from component constructors (links,
  routers, switch ports, NICs, CPU complexes); hands the component to
  the environment's injector for fault-target matching.
* :func:`active_plan_fingerprint` — from ``cache.stable_key``; folds
  the plan into result-cache keys (``None`` — and therefore key-neutral
  — for no plan *and* for the empty plan).

Activation is either programmatic (``chaos_session(plan)``) or ambient
via ``REPRO_CHAOS=/path/to/plan.json`` — the environment variable is
read lazily on first hook use and the loaded session is memoized per
path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["CHAOS_ENV", "active_chaos", "chaos_active", "register_target",
           "attach_environment", "active_plan_fingerprint"]

#: Environment variable naming a fault-plan JSON file to auto-load.
CHAOS_ENV = "REPRO_CHAOS"

#: The explicitly-activated session (``chaos_session(...)``), if any.
_ACTIVE: Optional[Any] = None

#: Sessions auto-loaded from ``REPRO_CHAOS``, memoized by path so one
#: run never re-parses (or re-creates injector state for) the same file.
_ENV_SESSIONS: Dict[str, Any] = {}

#: Benchmark escape hatch: ``True`` turns every hook into a no-op so
#: ``scripts/bench_compare.py`` can measure the pre-chaos baseline.
_BYPASS = False

#: Memoized :func:`repro.core.knobs.env_value` — bound on first hook
#: use so this module stays import-light (repro.core transitively
#: imports the simulator) without re-paying the import machinery on
#: every no-plan hook call.
_ENV_VALUE: Optional[Any] = None


def _env_value(name: str) -> Any:
    global _ENV_VALUE
    if _ENV_VALUE is None:
        from repro.core.knobs import env_value
        _ENV_VALUE = env_value
    return _ENV_VALUE(name)


def active_chaos() -> Optional[Any]:
    """The active :class:`~repro.chaos.injector.ChaosSession`, or ``None``.

    Resolution order: the bypass switch wins, then an explicit
    ``chaos_session(...)`` activation, then the ``REPRO_CHAOS``
    environment variable.
    """
    if _BYPASS:
        return None
    if _ACTIVE is not None:
        return _ACTIVE
    path = _env_value(CHAOS_ENV)
    if not path:
        return None
    session = _ENV_SESSIONS.get(path)
    if session is None:
        from repro.chaos.injector import ChaosSession
        from repro.chaos.plan import FaultPlan
        session = ChaosSession(FaultPlan.load(path))
        _ENV_SESSIONS[path] = session
    return session


def chaos_active() -> bool:
    """Whether a (possibly empty) fault plan is currently loaded."""
    return active_chaos() is not None


def attach_environment(env: Any) -> None:
    """Hook called by ``Environment.__init__``.

    Arms the active plan against the new environment: the injector is
    created and its arm/fire/recover events are scheduled up-front, so
    they carry the lowest sequence numbers at their instants and win
    FIFO ties against frame deliveries — the property that makes fault
    boundaries identical across the heap/calendar schedulers and the
    train on/off data paths.
    """
    session = active_chaos()
    if session is not None:
        session.attach_environment(env)


def register_target(category: str, name: str, obj: Any) -> None:
    """Hook called by component constructors (no-op without a plan).

    ``category`` is one of ``link``/``router``/``switch_port``/``nic``/
    ``cpu``; ``name`` is the component's user-visible name, matched
    against plan target globs.
    """
    session = active_chaos()
    if session is not None:
        session.register_target(category, name, obj)


def active_plan_fingerprint() -> Optional[str]:
    """Fingerprint of the active plan for cache keys, or ``None``.

    Returns ``None`` for the empty plan too: a plan with no faults
    cannot influence results, so its cache keys must stay byte-identical
    to chaos-off keys.
    """
    session = active_chaos()
    if session is None:
        return None
    plan = session.plan
    if plan.is_empty:
        return None
    return plan.fingerprint()
