"""Frame-level fault taps: the hands of the chaos engine.

Two families live here:

* the **deterministic index taps** (:class:`LossTap`,
  :class:`DuplicateTap`, :class:`ReorderTap`) — moved from the original
  ``repro.net.faults`` module (which now re-exports them with a
  deprecation warning).  They perturb specific per-kind arrival indices
  so a failing case replays exactly; property tests drive TCP's
  recovery machinery through them.
* the **time-gated** :class:`SinkTap` used by the
  :class:`~repro.chaos.injector.ChaosInjector`: installed once at
  simulation time zero (before any frame is in flight) and switched on
  and off purely by fault windows.

The install-at-t=0 rule is what keeps plans deterministic across the
batched and legacy data paths: the legacy per-frame path captures a
link's sink *when serialization ends*, while the segment-train path
reads it *at delivery* — swapping a sink mid-run would therefore
diverge for frames already in propagation.  A wrapper that is always
present but only acts inside its windows sidesteps the hazard entirely;
and because both paths deliver frames one-by-one at bit-identical
instants, in-flight segment trains are split at fault boundaries
exactly like legacy per-frame delivery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Set

from repro.errors import TopologyError
from repro.sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.injector import ArmedFault
    from repro.oskernel.skbuff import SkBuff

__all__ = ["LossTap", "DuplicateTap", "ReorderTap", "SinkTap"]


class _Tap:
    """Base: splice into a connected link."""

    def __init__(self, env: Environment, link,
                 kinds: Iterable[str] = ("data",)):
        if link.sink is None:
            raise TopologyError("tap must attach after the link is connected")
        self.env = env
        self.inner = link.sink
        self.kinds = set(kinds)
        self._count = 0
        link.connect(self)

    def _matches(self, skb: "SkBuff") -> bool:
        return skb.kind in self.kinds

    def receive_frame(self, skb: "SkBuff") -> None:  # pragma: no cover
        raise NotImplementedError


class LossTap(_Tap):
    """Drops the frames whose (per-kind) arrival index is in ``drops``.

    Indices count only matching frames, starting at 0.  Retransmissions
    count like any other frame, so a dropped index can be retried
    successfully.
    """

    def __init__(self, env: Environment, link, drops: Iterable[int],
                 kinds: Iterable[str] = ("data",)):
        super().__init__(env, link, kinds)
        self.drops: Set[int] = set(drops)
        self.dropped: List[int] = []

    def receive_frame(self, skb: "SkBuff") -> None:
        """Drop the frame when its index is planned; else pass through."""
        if self._matches(skb):
            index = self._count
            self._count += 1
            if index in self.drops:
                self.dropped.append(skb.ident)
                return
        self.inner.receive_frame(skb)


class DuplicateTap(_Tap):
    """Delivers the frames at the given indices twice (stale copies)."""

    def __init__(self, env: Environment, link, duplicates: Iterable[int],
                 kinds: Iterable[str] = ("data",)):
        super().__init__(env, link, kinds)
        self.duplicates: Set[int] = set(duplicates)
        self.duplicated: List[int] = []

    def receive_frame(self, skb: "SkBuff") -> None:
        """Pass through; deliver a stale copy when planned."""
        deliver_twice = False
        if self._matches(skb):
            if self._count in self.duplicates:
                deliver_twice = True
                self.duplicated.append(skb.ident)
            self._count += 1
        self.inner.receive_frame(skb)
        if deliver_twice:
            clone = skb.copy_for_retransmit()
            clone.meta.update(skb.meta)
            self.inner.receive_frame(clone)


class ReorderTap(_Tap):
    """Holds the frames at the given indices for ``delay_s``, letting
    later frames overtake them."""

    def __init__(self, env: Environment, link, holds: Iterable[int],
                 delay_s: float = 50e-6,
                 kinds: Iterable[str] = ("data",)):
        if delay_s < 0:
            raise TopologyError("hold delay cannot be negative")
        super().__init__(env, link, kinds)
        self.holds: Set[int] = set(holds)
        self.delay_s = delay_s
        self.held: List[int] = []

    def receive_frame(self, skb: "SkBuff") -> None:
        """Hold planned frames for ``delay_s``; pass others through."""
        if self._matches(skb):
            index = self._count
            self._count += 1
            if index in self.holds:
                self.held.append(skb.ident)
                self.env.schedule_call(self.delay_s,
                                       self.inner.receive_frame, skb)
                return
        self.inner.receive_frame(skb)


class SinkTap:
    """Permanent, window-gated wrapper around a frame sink.

    Installed by the injector's arm step (simulation time zero) in front
    of a link sink or a NIC's wire ingress.  ``active`` holds the
    :class:`~repro.chaos.injector.ArmedFault` entries whose windows are
    currently open, in plan order; outside every window the tap is a
    single truth test plus a forwarded call.

    Composition rules when several faults overlap on one target:

    * faults act in plan order;
    * a drop ends processing (later faults never see the frame);
    * a held frame (reorder/stall) bypasses the remaining faults — it
      re-enters the sink directly when its delay expires;
    * duplication forwards the original first, then one clone no matter
      how many duplicate faults matched.
    """

    def __init__(self, injector, category: str, name: str, forward):
        self.env: Environment = injector.env
        self.injector = injector
        self.category = category
        self.name = name
        self._forward = forward
        self.active: List["ArmedFault"] = []

    def arm(self, armed: "ArmedFault") -> None:
        """Open ``armed``'s window on this tap (keeps plan order)."""
        entries = self.active
        entries.append(armed)
        entries.sort(key=lambda af: af.index)

    def disarm(self, armed: "ArmedFault") -> None:
        """Close ``armed``'s window on this tap."""
        try:
            self.active.remove(armed)
        except ValueError:  # pragma: no cover - defensive
            pass

    def receive_frame(self, skb: "SkBuff") -> None:
        """Apply every open fault window, then forward survivors."""
        forward = self._forward
        if not self.active:
            forward(skb)
            return
        env = self.env
        trace = self.injector.trace
        duplicate: Optional["ArmedFault"] = None
        for armed in tuple(self.active):
            spec = armed.spec
            if not spec.matches_frame_kind(skb.kind):
                continue
            armed.frames += 1
            p = spec.probability
            # Draw only for genuinely stochastic faults: p == 1.0 must
            # not consume randomness, so purely-scheduled plans stay
            # draw-free and two plans differing only in probability
            # fields diverge exactly where they should.
            if p < 1.0 and armed.rng.random() >= p:
                continue
            kind = spec.kind
            if kind in ("link_flap", "loss_burst", "nic_reset"):
                armed.drops += 1
                trace.post(env.now, "chaos.frame_drop", skb.ident,
                           fault=armed.index, kind=kind, target=self.name)
                return
            if kind == "corruption":
                armed.corrupts += 1
                trace.post(env.now, "chaos.frame_drop", skb.ident,
                           fault=armed.index, kind=kind, target=self.name)
                return
            if kind == "reorder_window":
                armed.holds += 1
                trace.post(env.now, "chaos.frame_hold", skb.ident,
                           fault=armed.index, kind=kind, target=self.name,
                           delay_s=spec.delay_s)
                env.schedule_call(spec.delay_s, forward, skb)
                return
            if kind == "nic_stall":
                armed.holds += 1
                delay = max(0.0, armed.spec.end_s - env.now)
                trace.post(env.now, "chaos.frame_hold", skb.ident,
                           fault=armed.index, kind=kind, target=self.name,
                           delay_s=delay)
                env.schedule_call(delay, forward, skb)
                return
            if kind == "duplicate":
                duplicate = armed
        forward(skb)
        if duplicate is not None:
            duplicate.dups += 1
            trace.post(env.now, "chaos.frame_dup", skb.ident,
                       fault=duplicate.index, kind="duplicate",
                       target=self.name)
            clone = skb.copy_for_retransmit()
            clone.meta.update(skb.meta)
            forward(clone)
