"""Deterministic discrete-event simulation kernel.

A small, dependency-free engine in the style of SimPy: generator-based
processes yield :class:`~repro.sim.engine.Event` objects (timeouts,
resource requests, store gets/puts) and are resumed when those events
fire.  The engine is deterministic — equal-time events fire in schedule
order — which makes every experiment in this repository exactly
reproducible.
"""

from repro.sim.engine import (Environment, Event, Timeout, Process, Interrupt,
                              PeriodicCall)
from repro.sim.resources import Resource, Request, Store, StorePut, StoreGet
from repro.sim.monitor import Monitor, CounterMonitor, UtilizationMonitor
from repro.sim.rng import RngStreams
from repro.sim.runner import SweepRunner, job_context, point_seed, resolve_jobs
from repro.sim.trace import TraceBuffer, TraceEvent

__all__ = [
    "Environment",
    "SweepRunner",
    "job_context",
    "point_seed",
    "resolve_jobs",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "PeriodicCall",
    "Resource",
    "Request",
    "Store",
    "StorePut",
    "StoreGet",
    "Monitor",
    "CounterMonitor",
    "UtilizationMonitor",
    "RngStreams",
    "TraceBuffer",
    "TraceEvent",
]
