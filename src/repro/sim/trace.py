"""Low-overhead event tracing — the substrate for the MAGNET tool.

The paper used MAGNET to trace individual packets through the Linux TCP
stack "with negligible effect on network performance".  We reproduce the
same idea: components post :class:`TraceEvent` records into a shared
:class:`TraceBuffer`; when tracing is disabled the post is a single
attribute check, so the simulation hot path stays cheap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceBuffer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time of the event.
    point:
        Instrumentation point name, e.g. ``"tcp.tx.segment"``.
    subject:
        Identifier of the traced object (packet id, connection id...).
    detail:
        Free-form extra fields.
    """

    time: float
    point: str
    subject: Any = None
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceBuffer:
    """Ring buffer of :class:`TraceEvent` records.

    ``enabled`` gates recording; ``max_events`` bounds memory.  The ring
    is a ``deque(maxlen=...)``: eviction is true oldest-first and O(1)
    per post, and ``dropped`` counts evicted events exactly, like a
    kernel trace ring's overrun counter.
    """

    def __init__(self, max_events: int = 1_000_000, enabled: bool = False):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0

    def post(self, time: float, point: str, subject: Any = None,
             **detail: Any) -> None:
        """Record an event (no-op unless enabled)."""
        if not self.enabled:
            return
        events = self._events
        if len(events) == self.max_events:
            self.dropped += 1  # deque(maxlen) evicts the oldest
        events.append(TraceEvent(time, point, subject, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        """Discard all recorded events."""
        self._events.clear()
        self.dropped = 0

    def select(self, point: Optional[str] = None,
               subject: Any = None) -> List[TraceEvent]:
        """Events filtered by instrumentation point and/or subject.

        ``point`` may end with ``*`` for prefix matching
        (``"tcp.rx.*"``).
        """
        events = self._events
        if point is not None:
            if point.endswith("*"):
                prefix = point[:-1]
                events = [e for e in events if e.point.startswith(prefix)]
            else:
                events = [e for e in events if e.point == point]
        if subject is not None:
            events = [e for e in events if e.subject == subject]
        return list(events)

    def points(self) -> Dict[str, int]:
        """Histogram of instrumentation points seen."""
        hist: Dict[str, int] = {}
        for e in self._events:
            hist[e.point] = hist.get(e.point, 0) + 1
        return hist
