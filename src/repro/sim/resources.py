"""Shared resources for the DES: FCFS servers and object stores.

:class:`Resource` models a server with finite capacity (a CPU, a bus, a
switch port): processes ``yield resource.request()``, hold the resource
while they consume service time, then ``release()``.  Queueing is strictly
FIFO, which matches the hardware being modelled (PCI-X bus arbitration,
interrupt servicing) closely enough for the paper's effects.

:class:`Store` is an unbounded-or-bounded FIFO of Python objects used for
NIC descriptor rings, socket receive queues and switch output queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import ResourceError
from repro.sim.engine import Environment, Event

__all__ = ["Resource", "Request", "Store", "StorePut", "StoreGet"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource"):
        super().__init__(env)
        self.resource = resource


class Resource:
    """A finite-capacity FCFS server.

    Usage from a process::

        req = cpu.request()
        yield req
        yield env.timeout(service_time)
        cpu.release(req)

    Attributes
    ----------
    capacity:
        Number of simultaneous holders.
    busy_time:
        Accumulated holder-seconds, for utilisation accounting.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._holders: set = set()
        self._waiting: Deque[Request] = deque()
        # utilisation accounting
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        self.grant_count = 0

    # -- queue state ----------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of current holders."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._waiting)

    # -- protocol ---------------------------------------------------------------
    def request(self) -> Request:
        """Claim one unit of capacity; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self._holders) < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the capacity held by ``request``."""
        if request not in self._holders:
            raise ResourceError(
                f"release() of a request that does not hold {self.name or self!r}")
        self._account_idle()
        self._holders.discard(request)
        if not self._holders:
            self._busy_since = None
        while self._waiting and len(self._holders) < self.capacity:
            self._grant(self._waiting.popleft())

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted)."""
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of holder-capacity-time used since t=0.

        ``elapsed`` defaults to the current simulation time.
        """
        t = self.env.now if elapsed is None else elapsed
        if t <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += (self.env.now - self._busy_since) * len(self._holders)
        return busy / (t * self.capacity)

    # -- internals ---------------------------------------------------------------
    def _grant(self, req: Request) -> None:
        self._account_idle()
        self._holders.add(req)
        self._busy_since = self.env.now
        self.grant_count += 1
        req.succeed(value=self)

    def _account_idle(self) -> None:
        if self._busy_since is not None:
            self.busy_time += (self.env.now - self._busy_since) * len(self._holders)
            self._busy_since = self.env.now if self._holders else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Resource {self.name!r} {self.in_use}/{self.capacity} busy,"
                f" {self.queue_length} queued>")


class StorePut(Event):
    """Pending put into a bounded :class:`Store`; fires when accepted."""

    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Pending get from a :class:`Store`; fires with the item."""

    __slots__ = ()


class Store:
    """A FIFO buffer of objects with optional capacity.

    ``yield store.put(x)`` blocks while the store is full;
    ``item = yield store.get()`` blocks while it is empty.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 name: str = ""):
        if capacity < 1:
            raise ResourceError(f"store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()
        self.put_count = 0
        self.get_count = 0
        self.max_level = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the returned event fires when there is room."""
        ev = StorePut(self.env, item)
        self._putters.append(ev)
        self._settle()
        return ev

    def get(self) -> StoreGet:
        """Remove the oldest item; the returned event fires with it."""
        ev = StoreGet(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def try_get(self) -> Any:
        """Non-blocking get: the oldest item, or ``None`` when empty."""
        if self._items:
            self.get_count += 1
            return self._items.popleft()
        return None

    def _settle(self) -> None:
        moved = True
        while moved:
            moved = False
            if self._putters and len(self._items) < self.capacity:
                put = self._putters.popleft()
                self._items.append(put.item)
                self.put_count += 1
                if len(self._items) > self.max_level:
                    self.max_level = len(self._items)
                put.succeed()
                moved = True
            if self._getters and self._items:
                get = self._getters.popleft()
                self.get_count += 1
                get.succeed(value=self._items.popleft())
                moved = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name!r} level={self.level}/{self.capacity}>"
