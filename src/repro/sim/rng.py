"""Deterministic, named random-number streams.

Every stochastic element of the simulation (loss processes, jitter,
sampling intervals) draws from its own named stream so that adding a new
consumer of randomness never perturbs existing experiments — the classic
variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A factory of independent ``numpy.random.Generator`` streams.

    Streams are derived from a root seed via ``SeedSequence.spawn``-style
    keying on the stream name, so ``streams.get("loss")`` is identical
    across runs with the same root seed regardless of creation order.
    """

    def __init__(self, seed: int = 0x10BE):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=tuple(name.encode("utf-8")),
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Forget all streams; subsequent ``get`` calls start fresh."""
        self._streams.clear()
