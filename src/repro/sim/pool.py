"""Persistent warm worker pool + the one submit/collect dispatch path.

Every sweep in this repository used to pay a fresh
``ProcessPoolExecutor`` spin-up (fork, import, source-fingerprint walk)
per call.  This module keeps **one long-lived pool** warm across
sweeps and experiments and funnels every parallel point through a
single :func:`submit` / :meth:`SweepHandle.collect` seam — the same
seam a future job server will drive.

What makes the warm pool safe to share:

* **Ambient-state capsules.**  A forked worker snapshots the parent at
  fork time; a *persistent* worker forked during sweep #1 would run
  sweep #50 under stale knobs.  Every batch therefore carries a capsule
  of the ambient state that can influence results — the ``REPRO_*``
  environment knobs (train batching, scheduler backend, chaos plan
  path...) and the explicitly-activated chaos fault plan — which the
  worker applies before running the batch.  Results are bit-identical
  to a per-sweep pool by construction.
* **Fingerprint shipped, not recomputed.**  The pool initializer
  exports the parent's :func:`~repro.cache.code_fingerprint` into each
  worker via ``REPRO_CODE_FINGERPRINT``, so no worker ever repeats the
  package source walk.
* **Batched dispatch.**  Points travel in chunks (one future per
  chunk, not per point), amortizing pickling and future bookkeeping on
  wide sweeps; chunking preserves task order, so results are identical
  at any chunk size (``REPRO_POOL_CHUNK`` forces a size).
* **Cache probe before submit.**  When a result cache is active every
  key is probed first and only misses are dispatched — a fully-warm
  sweep never touches the pool (or creates it) at all.

Knobs: ``REPRO_POOL_PERSIST=0`` restores the per-sweep pool;
``REPRO_POOL_CHUNK=N`` forces the batch size.  Telemetry counters
``pool.tasks_dispatched`` and ``pool.reuse`` record dispatch traffic
(see docs/CACHING.md).
"""

from __future__ import annotations

import atexit
import contextlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache import active_cache, code_fingerprint, stable_key
from repro.chaos import hooks as chaos_hooks

__all__ = ["SweepHandle", "submit", "dispatch", "shutdown_pool",
           "pool_persist_enabled", "pool_stats", "resolve_chunk"]

#: The shared executor (created lazily), its size, and the owning pid.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_PID: Optional[int] = None

#: Lifetime dispatch accounting (mirrored into telemetry when active).
_STATS = {"pools_created": 0, "pool_reuses": 0, "tasks_dispatched": 0,
          "batches_dispatched": 0, "points_inline": 0}


def pool_persist_enabled() -> bool:
    """True when the warm pool persists across sweeps (the default)."""
    from repro.core.knobs import env_value  # lazy: core imports sim
    return env_value("REPRO_POOL_PERSIST")


def pool_stats() -> Dict[str, int]:
    """Lifetime pool/dispatch counters for this process (a copy)."""
    return dict(_STATS)


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the persistent pool (no-op when none is alive)."""
    global _POOL, _POOL_WORKERS, _POOL_PID
    pool, _POOL = _POOL, None
    _POOL_WORKERS = 0
    _POOL_PID = None
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_pool)


def _worker_init(fingerprint: str) -> None:
    """Pool-worker initializer: pin the parent's code fingerprint so
    workers never repeat the package source walk."""
    os.environ["REPRO_CODE_FINGERPRINT"] = fingerprint


def _get_executor(workers: int) -> Tuple[ProcessPoolExecutor, bool, bool]:
    """``(executor, reused, ephemeral)`` for a dispatch of ``workers``.

    Persistent mode reuses the module-level pool while its size
    matches; a size change (or a fork — pools never cross a pid) tears
    the old pool down first.  Ephemeral mode hands back a fresh pool
    the caller must shut down.
    """
    global _POOL, _POOL_WORKERS, _POOL_PID
    init = (_worker_init, (code_fingerprint(),))
    if not pool_persist_enabled():
        _STATS["pools_created"] += 1
        return (ProcessPoolExecutor(max_workers=workers,
                                    initializer=init[0], initargs=init[1]),
                False, True)
    if _POOL is not None and (_POOL_PID != os.getpid()
                              or _POOL_WORKERS != workers):
        if _POOL_PID == os.getpid():
            shutdown_pool()
        else:  # forked child: the inherited pool belongs to the parent
            _POOL = None
            _POOL_WORKERS = 0
            _POOL_PID = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=workers,
                                    initializer=init[0], initargs=init[1])
        _POOL_WORKERS = workers
        _POOL_PID = os.getpid()
        _STATS["pools_created"] += 1
        return _POOL, False, False
    _STATS["pool_reuses"] += 1
    _count("pool.reuse")
    return _POOL, True, False


# ---------------------------------------------------------------------------
# Ambient-state capsules
# ---------------------------------------------------------------------------

#: Worker-side chaos sessions, memoized by plan fingerprint so every
#: batch under one plan shares injector state exactly like the old
#: fork-inherited session did.
_WORKER_CHAOS: Dict[str, Any] = {}


def _capture_ambient() -> Dict[str, Any]:
    """Snapshot the parent state a worker needs to reproduce results."""
    env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
    # ship the computed fingerprint even when the parent env lacks it
    env["REPRO_CODE_FINGERPRINT"] = code_fingerprint()
    plan = None
    session = chaos_hooks._ACTIVE
    if session is not None:
        plan = session.plan
    return {"env": env, "plan": plan}


def _apply_ambient(ambient: Dict[str, Any]) -> None:
    """Worker side: make the ambient state match the parent's capsule."""
    env = ambient["env"]
    for key in [k for k in os.environ
                if k.startswith("REPRO_") and k not in env]:
        del os.environ[key]
    os.environ.update(env)
    plan = ambient["plan"]
    if plan is None:
        chaos_hooks._ACTIVE = None
        return
    fp = "empty" if plan.is_empty else plan.fingerprint()
    session = _WORKER_CHAOS.get(fp)
    if session is None:
        from repro.chaos.injector import ChaosSession
        session = ChaosSession(plan)
        _WORKER_CHAOS[fp] = session
    chaos_hooks._ACTIVE = session


def _run_batch(payload: Tuple) -> List[Any]:
    """Worker entry point: apply the capsule, run the chunk in order."""
    fn, tasks, ambient = payload
    _apply_ambient(ambient)
    return [fn(task) for task in tasks]


def _run_batch_telemetry(payload: Tuple) -> List[Tuple[Any, Any]]:
    """Worker entry point for telemetry runs: each point executes in a
    fresh nested session and ships its payload home (see
    :mod:`repro.telemetry.session`)."""
    fn, tasks, ambient, spec = payload
    _apply_ambient(ambient)
    from repro.telemetry.session import nested_session
    metrics, trace, profile = spec
    out = []
    for task in tasks:
        with nested_session(metrics=metrics, trace=trace,
                            profile=profile) as session:
            result = fn(task)
        out.append((result, session.export_payload()))
    return out


def _telemetry_point(fn: Callable, task: Any,
                     spec: Tuple[bool, bool, bool]) -> Tuple[Any, Any]:
    """Serial in-process variant of one telemetry point."""
    from repro.telemetry.session import nested_session
    metrics, trace, profile = spec
    with nested_session(metrics=metrics, trace=trace,
                        profile=profile) as session:
        result = fn(task)
    return result, session.export_payload()


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def resolve_chunk(pending: int, workers: int) -> int:
    """Points per dispatched task (``REPRO_POOL_CHUNK`` overrides).

    Auto mode aims for ~4 chunks per worker — enough slack for dynamic
    load balancing, few enough futures to amortize dispatch overhead on
    wide sweeps — capped so one straggler chunk never dominates.
    """
    from repro.core.knobs import env_value  # lazy: core imports sim
    forced = env_value("REPRO_POOL_CHUNK")
    if forced is not None:
        return max(1, forced)
    return max(1, min(-(-pending // (workers * 4)), 64))


def _count(point: str, amount: int = 1) -> None:
    from repro.telemetry.session import active_metrics
    metrics = active_metrics()
    if metrics is not None:
        metrics.counter(point).inc(amount)


class SweepHandle:
    """An in-flight sweep: probe results now, computed points later.

    :func:`submit` probes the cache and dispatches the misses; the
    handle owns the outstanding futures.  :meth:`collect` blocks for
    the remainder, memoizes fresh results and returns the full result
    list in task order.  This split is the seam a job server schedules
    through: submit many sweeps, collect as they drain.
    """

    def __init__(self, results: List[Any], pending: List[int],
                 keys: List[Optional[str]], cache: Optional[Any],
                 chunks: List[Tuple[List[int], Any]],
                 inline: Optional[Tuple[Callable, List[Any]]],
                 executor: Optional[ProcessPoolExecutor], ephemeral: bool,
                 session: Optional[Any] = None, prefix_ns: str = ""):
        self._results = results
        self._pending = pending
        self._keys = keys
        self._cache = cache
        self._chunks = chunks          # [(indices, future)]
        self._inline = inline          # serial fallback: (runner, tasks)
        self._executor = executor
        self._ephemeral = ephemeral
        self._session = session
        self._prefix_ns = prefix_ns
        self._collected = False

    @property
    def warm(self) -> bool:
        """True when every point was answered from the cache."""
        return not self._pending

    def collect(self) -> List[Any]:
        """Wait for the computed points; return results in task order."""
        if self._collected:
            return self._results
        self._collected = True
        try:
            if self._inline is not None:
                runner, tasks = self._inline
                for i in self._pending:
                    self._finish(i, runner(tasks[i]))
            else:
                for indices, future in self._chunks:
                    for i, value in zip(indices, future.result()):
                        self._finish(i, value)
        finally:
            if self._ephemeral and self._executor is not None:
                self._executor.shutdown()
        return self._results

    def _finish(self, index: int, value: Any) -> None:
        if self._session is not None:
            result, payload = value
            self._results[index] = result
            self._session.absorb(
                payload, prefix=f"{self._prefix_ns}[{index}]/")
            return
        self._results[index] = value
        if self._cache is not None:
            self._cache.put(self._keys[index], value)


def submit(fn: Callable[[Any], Any], tasks: Sequence[Any], *,
           jobs: int = 1, cache_ns: Optional[str] = None,
           session: Optional[Any] = None) -> SweepHandle:
    """Probe the cache and dispatch the misses; returns the handle.

    ``fn`` must be a module-level callable and each task picklable
    (they cross a process boundary when ``jobs > 1``).  When
    ``cache_ns`` names a namespace and a cache is active, completed
    points are memoized and only misses are dispatched.  A telemetry
    ``session`` switches to per-point nested sessions (and bypasses
    the cache — a hit would produce no telemetry).
    """
    tasks = list(tasks)
    results: List[Any] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    keys: List[Optional[str]] = [None] * len(tasks)
    cache = None
    if session is None and cache_ns is not None:
        cache = active_cache()
    if cache is not None:
        fingerprint = code_fingerprint()
        fn_id = f"{fn.__module__}.{fn.__qualname__}"
        still_pending = []
        for i in pending:
            keys[i] = stable_key(cache_ns, fn_id, tasks[i], fingerprint)
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = value
            else:
                still_pending.append(i)
        pending = still_pending
    prefix_ns = cache_ns or f"{fn.__module__}.{fn.__qualname__}"
    spec = None
    if session is not None:
        spec = (session.metrics_enabled, session.trace_enabled,
                session.profile_enabled)
    # Serial (or trivially small) work runs inline — a warm sweep, a
    # single miss, or jobs=1 never pays pool machinery at all.
    if not pending or jobs <= 1 or len(pending) <= 1:
        _STATS["points_inline"] += len(pending)
        if session is not None:
            runner: Callable = lambda task: _telemetry_point(fn, task, spec)
        else:
            runner = fn
        return SweepHandle(results, pending, keys, cache, [],
                           (runner, tasks), None, False,
                           session=session, prefix_ns=prefix_ns)
    workers = min(jobs, len(pending))
    executor, _reused, ephemeral = _get_executor(workers)
    ambient = _capture_ambient()
    chunk = resolve_chunk(len(pending), workers)
    chunks: List[Tuple[List[int], Any]] = []
    for start in range(0, len(pending), chunk):
        indices = pending[start:start + chunk]
        batch = [tasks[i] for i in indices]
        if session is not None:
            payload: Tuple = (fn, batch, ambient, spec)
            future = executor.submit(_run_batch_telemetry, payload)
        else:
            future = executor.submit(_run_batch, (fn, batch, ambient))
        chunks.append((indices, future))
    _STATS["tasks_dispatched"] += len(pending)
    _STATS["batches_dispatched"] += len(chunks)
    _count("pool.tasks_dispatched", len(pending))
    return SweepHandle(results, pending, keys, cache, chunks, None,
                       executor, ephemeral, session=session,
                       prefix_ns=prefix_ns)


def dispatch(fn: Callable[[Any], Any], tasks: Sequence[Any], *,
             jobs: int = 1, cache_ns: Optional[str] = None,
             session: Optional[Any] = None) -> List[Any]:
    """:func:`submit` + :meth:`SweepHandle.collect` in one call."""
    return submit(fn, tasks, jobs=jobs, cache_ns=cache_ns,
                  session=session).collect()
