"""Arithmetic FIFO servers: resource semantics without the event cascade.

A :class:`FifoTimeline` replaces a :class:`~repro.sim.resources.Resource`
for the common pure ``request -> hold -> release`` cycle.  Because grants
are strictly FIFO *and* the hold length is known at request time, the
grant and completion instants are pure arithmetic::

    start = max(now, earliest server free)
    end   = start + hold

:meth:`FifoTimeline.charge` commits the hold and returns ``(start, end)``;
the caller sleeps until ``end`` with a single pooled timeout — or
schedules a completion callback — instead of the request-grant /
hold-timeout / release-regrant event cascade (one event instead of three
per use).  Every grant and completion happens at exactly the simulated
time the event-based resource would produce, so converting a call site is
invisible in simulation results; only wall-clock time changes.

The timeline cannot express holders that keep the server across *other*
yields, nor cancellation of queued requests — call sites needing either
stay on :class:`Resource`.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ResourceError
from repro.sim.engine import Environment

__all__ = ["FifoTimeline"]


class FifoTimeline:
    """A finite-capacity FCFS server granted by arithmetic, not events.

    Capacity ``c`` models ``c`` identical servers with one FIFO queue
    (exactly :class:`Resource` semantics: a request is granted when the
    earliest-free unit frees up).

    Attributes
    ----------
    committed_time:
        Total hold-seconds ever charged (including holds extending past
        the current simulation time).
    charge_count:
        Number of charges, mirroring ``Resource.grant_count``.
    """

    __slots__ = ("env", "capacity", "name", "_ends", "committed_time",
                 "charge_count")

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._ends = [0.0] * capacity  # per-server busy-until instants
        self.committed_time = 0.0
        self.charge_count = 0

    # -- protocol ---------------------------------------------------------------
    def charge(self, hold: float) -> Tuple[float, float]:
        """Commit one FIFO hold of ``hold`` seconds; return (start, end)."""
        now = self.env._now
        ends = self._ends
        if len(ends) == 1:
            free = ends[0]
            start = free if free > now else now
            end = start + hold
            ends[0] = end
        else:
            idx = 0
            free = ends[0]
            for j in range(1, len(ends)):
                if ends[j] < free:
                    free = ends[j]
                    idx = j
            start = free if free > now else now
            end = start + hold
            ends[idx] = end
        self.committed_time += hold
        self.charge_count += 1
        return start, end

    @property
    def busy_until(self) -> float:
        """Instant the last-committed hold completes."""
        return max(self._ends)

    # -- accounting -------------------------------------------------------------
    def busy_elapsed(self) -> float:
        """Holder-seconds consumed up to the current time.

        Charges commit their full hold up front; the not-yet-elapsed tail
        of each server's schedule is subtracted.  (The region between
        ``now`` and each server's ``end`` is contiguously busy: every
        charge starts at ``max(now, previous end)``, so committed service
        beyond ``now`` is exactly ``end - now`` per busy server.)
        """
        now = self.env._now
        future = 0.0
        for end in self._ends:
            if end > now:
                future += end - now
        return self.committed_time - future

    def utilization(self, elapsed: float = None) -> float:
        """Fraction of capacity-time used since t=0 (Resource-compatible)."""
        t = self.env.now if elapsed is None else elapsed
        if t <= 0:
            return 0.0
        return self.busy_elapsed() / (t * self.capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FifoTimeline {self.name!r} capacity={self.capacity} "
                f"busy_until={self.busy_until:.9f}>")
