"""Parallel sweep execution: fan independent simulation points over cores.

Every experiment in this repository decomposes into *independent*
end-to-end simulations — one fresh :class:`~repro.sim.engine.Environment`
per payload size, MTU, buffer factor or probe.  :class:`SweepRunner`
exploits that: it dispatches such points through the persistent warm
worker pool (:mod:`repro.sim.pool`) and collects results in submission
order, so a parallel sweep is *bit-identical* to the serial one (each
point is a deterministic pure function of its task tuple; only
wall-clock changes).  With ``jobs=1`` no pool is created at all — the
serial fallback runs the exact same function calls in-process.

Job-count resolution (first match wins):

1. an explicit ``jobs=`` argument,
2. the innermost :func:`job_context` scope (how
   ``run_experiment(..., jobs=N)`` reaches the sweeps inside),
3. the ``REPRO_JOBS`` environment variable (``auto`` = one per core),
4. serial (1).

The runner also consults :func:`repro.cache.active_cache`: completed
points are memoized keyed by (namespace, worker function, task tuple,
code fingerprint), so only cache misses are dispatched at all — a
fully-warm sweep answers without ever touching the worker pool.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.errors import ConfigError
from repro.sim import pool as _pool
from repro.telemetry.session import active_session

__all__ = ["SweepRunner", "resolve_jobs", "job_context", "point_seed"]

_active_jobs: contextvars.ContextVar = contextvars.ContextVar(
    "repro_jobs", default=None)


def resolve_jobs(jobs: Any = None) -> int:
    """Resolve a job count following the precedence above (always >= 1)."""
    if jobs is None:
        jobs = _active_jobs.get()
    if jobs is None:
        from repro.core.knobs import env_value  # lazy: core imports sim
        jobs = env_value("REPRO_JOBS") or 1
    if isinstance(jobs, str):
        if jobs.lower() in ("auto", "all"):
            jobs = os.cpu_count() or 1
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ConfigError(
                    f"job count must be an integer or 'auto', got {jobs!r}"
                ) from None
    jobs = int(jobs)
    if jobs <= 0:  # 0 and negatives mean "one per core", like make -j
        jobs = os.cpu_count() or 1
    return jobs


@contextlib.contextmanager
def job_context(jobs: Any) -> Iterator[int]:
    """Scope a job count so nested sweeps pick it up.

    ``jobs=None`` is a no-op scope (inherit the surrounding setting).
    """
    if jobs is None:
        yield resolve_jobs()
        return
    token = _active_jobs.set(resolve_jobs(jobs))
    try:
        yield resolve_jobs()
    finally:
        _active_jobs.reset(token)


def point_seed(base_seed: int, index: int) -> int:
    """A deterministic 64-bit seed for sweep point ``index``.

    Derived by hashing rather than offsetting so neighbouring points get
    statistically independent streams, and identical (base, index) pairs
    get identical seeds in every process — serial and parallel runs see
    the same randomness.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class SweepRunner:
    """Ordered, optionally-parallel, optionally-cached point execution."""

    def __init__(self, jobs: Any = None):
        self.jobs = resolve_jobs(jobs)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any],
            cache_ns: Optional[str] = None) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order.

        ``fn`` must be a module-level callable and each task picklable
        (they cross a process boundary when ``jobs > 1``).  When
        ``cache_ns`` is given and a cache is active, completed points
        are memoized; only misses are computed.  Under an active
        telemetry session the cache is bypassed (a hit would return the
        result but produce no telemetry) and every point runs in its own
        nested session whose payload is absorbed in task order.

        Delegates to the :mod:`repro.sim.pool` submit/collect seam, so
        parallel points share the persistent warm worker pool across
        sweeps and experiments.
        """
        return _pool.dispatch(fn, tasks, jobs=self.jobs, cache_ns=cache_ns,
                              session=active_session())
