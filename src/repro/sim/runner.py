"""Parallel sweep execution: fan independent simulation points over cores.

Every experiment in this repository decomposes into *independent*
end-to-end simulations — one fresh :class:`~repro.sim.engine.Environment`
per payload size, MTU, buffer factor or probe.  :class:`SweepRunner`
exploits that: it dispatches such points over a
:class:`~concurrent.futures.ProcessPoolExecutor` and collects results in
submission order, so a parallel sweep is *bit-identical* to the serial
one (each point is a deterministic pure function of its task tuple; only
wall-clock changes).  With ``jobs=1`` no pool is created at all — the
serial fallback runs the exact same function calls in-process.

Job-count resolution (first match wins):

1. an explicit ``jobs=`` argument,
2. the innermost :func:`job_context` scope (how
   ``run_experiment(..., jobs=N)`` reaches the sweeps inside),
3. the ``REPRO_JOBS`` environment variable (``auto`` = one per core),
4. serial (1).

The runner also consults :func:`repro.cache.active_cache`: completed
points are memoized keyed by (namespace, worker function, task tuple,
code fingerprint), so only cache misses are dispatched at all.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.cache import active_cache, code_fingerprint, stable_key
from repro.errors import ConfigError
from repro.telemetry.session import active_session, nested_session

__all__ = ["SweepRunner", "resolve_jobs", "job_context", "point_seed"]


def _telemetry_call(bundle):
    """Run one sweep point inside a fresh nested telemetry session.

    Module-level so it pickles into pool workers.  Returns ``(result,
    payload)`` — the payload carries the point's metrics snapshot, trace
    events and engine profile back to the parent, which absorbs them in
    task order.  Serial execution goes through this same wrapper, so
    serial and parallel runs aggregate identically by construction.
    """
    fn, task, spec = bundle
    metrics, trace, profile = spec
    with nested_session(metrics=metrics, trace=trace,
                        profile=profile) as session:
        result = fn(task)
    return result, session.export_payload()

_active_jobs: contextvars.ContextVar = contextvars.ContextVar(
    "repro_jobs", default=None)


def resolve_jobs(jobs: Any = None) -> int:
    """Resolve a job count following the precedence above (always >= 1)."""
    if jobs is None:
        jobs = _active_jobs.get()
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "").strip() or 1
    if isinstance(jobs, str):
        if jobs.lower() in ("auto", "all"):
            jobs = os.cpu_count() or 1
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise ConfigError(
                    f"job count must be an integer or 'auto', got {jobs!r}"
                ) from None
    jobs = int(jobs)
    if jobs <= 0:  # 0 and negatives mean "one per core", like make -j
        jobs = os.cpu_count() or 1
    return jobs


@contextlib.contextmanager
def job_context(jobs: Any) -> Iterator[int]:
    """Scope a job count so nested sweeps pick it up.

    ``jobs=None`` is a no-op scope (inherit the surrounding setting).
    """
    if jobs is None:
        yield resolve_jobs()
        return
    token = _active_jobs.set(resolve_jobs(jobs))
    try:
        yield resolve_jobs()
    finally:
        _active_jobs.reset(token)


def point_seed(base_seed: int, index: int) -> int:
    """A deterministic 64-bit seed for sweep point ``index``.

    Derived by hashing rather than offsetting so neighbouring points get
    statistically independent streams, and identical (base, index) pairs
    get identical seeds in every process — serial and parallel runs see
    the same randomness.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class SweepRunner:
    """Ordered, optionally-parallel, optionally-cached point execution."""

    def __init__(self, jobs: Any = None):
        self.jobs = resolve_jobs(jobs)

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any],
            cache_ns: Optional[str] = None) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order.

        ``fn`` must be a module-level callable and each task picklable
        (they cross a process boundary when ``jobs > 1``).  When
        ``cache_ns`` is given and a cache is active, completed points
        are memoized; only misses are computed.
        """
        tasks = list(tasks)
        results: List[Any] = [None] * len(tasks)
        session = active_session()
        if session is not None:
            # Telemetry run: every point executes inside its own nested
            # session and ships its metrics/events/profile back here.
            # The on-disk cache is bypassed — a cache hit would return
            # the result but produce no telemetry.
            spec = (session.metrics_enabled, session.trace_enabled,
                    session.profile_enabled)
            bundles = [(fn, task, spec) for task in tasks]
            if self.jobs > 1 and len(bundles) > 1:
                workers = min(self.jobs, len(bundles))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    pairs = list(pool.map(_telemetry_call, bundles))
            else:
                pairs = [_telemetry_call(b) for b in bundles]
            prefix_ns = cache_ns or f"{fn.__module__}.{fn.__qualname__}"
            for i, (result, payload) in enumerate(pairs):
                results[i] = result
                session.absorb(payload, prefix=f"{prefix_ns}[{i}]/")
            return results
        cache = active_cache() if cache_ns is not None else None
        pending = list(range(len(tasks)))
        keys: List[Optional[str]] = [None] * len(tasks)
        if cache is not None:
            fingerprint = code_fingerprint()
            fn_id = f"{fn.__module__}.{fn.__qualname__}"
            still_pending = []
            for i in pending:
                keys[i] = stable_key(cache_ns, fn_id, tasks[i], fingerprint)
                hit, value = cache.get(keys[i])
                if hit:
                    results[i] = value
                else:
                    still_pending.append(i)
            pending = still_pending
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [pool.submit(fn, tasks[i]) for i in pending]
                    for i, future in zip(pending, futures):
                        results[i] = future.result()
            else:
                for i in pending:
                    results[i] = fn(tasks[i])
            if cache is not None:
                for i in pending:
                    cache.put(keys[i], results[i])
        return results
