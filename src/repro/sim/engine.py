"""Discrete-event simulation core: environment, events and processes.

Design notes
------------

* The event queue stores ``(time, sequence, Event)`` tuples.  The
  monotonically increasing sequence number guarantees FIFO ordering
  among same-time events, so runs are bit-for-bit deterministic.  Two
  interchangeable backends implement the queue: a binary heap (the
  default) and a self-resizing :class:`CalendarQueue` (select with
  ``REPRO_SCHEDULER=calendar`` or the ``scheduler=`` constructor
  argument).  Both pop in exact ``(time, sequence)`` order, so the
  backend choice never changes simulation results — only wall-clock
  speed.  :meth:`Environment.swap_scheduler` migrates still-pending
  events between backends mid-run; the calendar queue requests an
  automatic fallback to the heap when the event-time distribution
  defeats its bucketing heuristics.
* Processes are plain Python generators.  A process yields an
  :class:`Event`; the engine registers the process as a callback and
  resumes it (``send``/``throw``) when the event fires.  This is the same
  execution model as SimPy's, reduced to the features the repro needs.
* Following the profiling guidance in the HPC-Python guides the hot path
  (the dispatch loop inlined into ``Environment.run``) avoids attribute
  lookups in the inner loop and allocates nothing beyond the events
  themselves.  Internal model code can additionally use
  :meth:`Environment._fast_timeout`, which recycles processed
  :class:`Timeout` objects through a free pool instead of allocating a
  fresh one per event.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from time import perf_counter
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.chaos.hooks import attach_environment as _attach_chaos
from repro.errors import ScheduleInPastError, SimulationError
from repro.telemetry.profiling import component_of as _component_of
from repro.telemetry.session import active_metrics as _active_metrics
from repro.telemetry.session import attach_environment as _attach_environment

__all__ = ["Environment", "Event", "Timeout", "Process", "Interrupt",
           "CalendarQueue", "PeriodicCall"]

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify

#: environment variable selecting the event-queue backend
SCHEDULER_ENV = "REPRO_SCHEDULER"
_SCHEDULERS = ("heap", "calendar")


class CalendarQueue:
    """Self-resizing bucketed event queue (a calendar queue).

    Drop-in replacement for the binary heap: :meth:`pop` returns pending
    ``(time, seq, event)`` tuples in exact ascending ``(time, seq)``
    order, so same-time FIFO determinism is bit-identical to the heap.

    Structure: pending tuples live in per-epoch *buckets* (``dict``
    keyed by ``int(time / width)``) that stay unsorted until their epoch
    comes up; a small min-heap of bucket ids yields the next non-empty
    bucket directly, so there is no empty-bucket scanning even for
    sparse horizons (40 ms delayed-ACK timers next to nanosecond wire
    events).  The due bucket is sorted *descending* once (C ``sort``)
    into a ready window popped from the end in O(1); same-time events
    scheduled while draining are binary-insorted near the tail, which is
    cheap because they are always the next-due entries.

    The bucket ``width`` resizes itself toward a target mean occupancy
    (Brown's heuristic, simplified): too-full buckets pay insertion-sort
    churn, too-sparse buckets degenerate into a slower heap.  When the
    distribution keeps defeating the heuristic (``resizes`` exhausts its
    budget) the queue sets ``fallback_requested`` and the environment
    swaps back to the binary heap mid-run.
    """

    __slots__ = ("_buckets", "_bids", "_ready", "_ready_bid", "_width",
                 "_inv_width", "_len", "_loads", "_loaded", "resizes",
                 "fallback_requested", "resize_counter")

    #: mean bucket occupancy the resize heuristic steers toward
    TARGET_OCCUPANCY = 16
    #: relative occupancy band outside which a resize fires
    HIGH_FACTOR = 8.0
    LOW_FACTOR = 0.125
    #: bucket loads between occupancy checks
    CHECK_EVERY = 64
    #: resize budget before requesting the heap fallback
    MAX_RESIZES = 8
    #: width clamp (seconds per bucket)
    MIN_WIDTH = 1e-9
    MAX_WIDTH = 10.0

    def __init__(self, width: float = 1e-5):
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: dict = {}   # bucket id -> unsorted [(t, seq, ev)]
        self._bids: List[int] = [] # min-heap of ids present in _buckets
        self._ready: List[tuple] = []  # descending; pop from the end
        self._ready_bid = -1       # highest bucket id merged into _ready
        self._len = 0
        self._loads = 0
        self._loaded = 0
        self.resizes = 0
        self.fallback_requested = False
        #: optional telemetry Counter mirroring ``resizes`` (the
        #: ``engine.calendar_resizes`` instrumentation point)
        self.resize_counter: Optional[Any] = None

    def __len__(self) -> int:
        return self._len

    def push(self, item: tuple) -> None:
        """Insert a ``(time, seq, event)`` tuple."""
        bid = int(item[0] * self._inv_width)
        if bid <= self._ready_bid:
            # Belongs to the window already being drained: binary-insort
            # into the descending ready list.  Same-time events land by
            # the tail (they sort just above the already-drained point),
            # so the list shift is short.
            r = self._ready
            lo, hi = 0, len(r)
            while lo < hi:
                mid = (lo + hi) >> 1
                if r[mid] > item:
                    lo = mid + 1
                else:
                    hi = mid
            r.insert(lo, item)
        else:
            bucket = self._buckets.get(bid)
            if bucket is None:
                self._buckets[bid] = [item]
                _heappush(self._bids, bid)
            else:
                bucket.append(item)
        self._len += 1

    def pop(self) -> tuple:
        """Remove and return the smallest ``(time, seq, event)`` tuple."""
        r = self._ready
        while not r:
            self._refill()
            r = self._ready
        self._len -= 1
        return r.pop()

    def peek_time(self) -> float:
        """Time of the next event; ``inf`` when empty."""
        r = self._ready
        while not r:
            if not self._bids:
                return float("inf")
            self._refill()
            r = self._ready
        return r[-1][0]

    def drain(self) -> List[tuple]:
        """Remove and return every pending tuple (arbitrary order)."""
        items = list(self._ready)
        for bucket in self._buckets.values():
            items.extend(bucket)
        self._ready = []
        self._buckets = {}
        self._bids = []
        self._ready_bid = -1
        self._len = 0
        return items

    # -- internals ---------------------------------------------------------
    def _refill(self) -> None:
        if not self._bids:
            raise SimulationError("pop from an empty calendar queue")
        bid = _heappop(self._bids)
        items = self._buckets.pop(bid)
        self._ready_bid = bid
        items.sort(reverse=True)
        self._ready = items
        self._loads += 1
        self._loaded += len(items)
        if self._loads >= self.CHECK_EVERY:
            self._maybe_resize()

    def _maybe_resize(self) -> None:
        mean = self._loaded / self._loads
        self._loads = 0
        self._loaded = 0
        target = self.TARGET_OCCUPANCY
        too_full = mean > target * self.HIGH_FACTOR
        too_sparse = (mean < target * self.LOW_FACTOR
                      and self._len > 4 * target)
        if not (too_full or too_sparse):
            return
        if self.resizes >= self.MAX_RESIZES:
            self.fallback_requested = True
            return
        self._rebuild(self._width * target / max(mean, 0.01))

    def _rebuild(self, new_width: float) -> None:
        items = self.drain()
        self._width = min(max(new_width, self.MIN_WIDTH), self.MAX_WIDTH)
        self._inv_width = 1.0 / self._width
        self.resizes += 1
        if self.resize_counter is not None:
            self.resize_counter.inc()
        push = self.push
        for item in items:
            push(item)


def _noop(event: "Event") -> None:
    """Marker callback: registers interest in an event without acting."""


def _run_call(event: "Event") -> None:
    """Trampoline for :meth:`Environment.schedule_call` events: invokes
    the stored ``fn(*args)``.  A shared module-level function, so
    scheduling a call allocates no per-call closure."""
    event.fn(*event.args)


class PeriodicCall:
    """A cancellable fixed-interval callback (see :meth:`Environment.every`).

    The first call fires one ``interval`` after creation, then every
    ``interval`` thereafter until :meth:`cancel` — the primitive behind
    the hybrid mode's fluid coupling tick.  Each firing schedules the
    next through the pooled callback path, so a periodic call costs one
    recycled event per tick and never retains a fired event.

    With ``while_pending=True`` the call re-arms only while *other*
    events are still pending after it fires, so a drain-mode
    ``run()`` still terminates: once the periodic call would be the
    sole thing keeping the queue alive, it stops.  Nothing can wake a
    drained DES except its own events, so stopping then loses no
    coverage — this is how the live-telemetry heartbeat rides along
    without turning every run into an infinite loop.
    """

    __slots__ = ("env", "interval", "fn", "args", "fires", "while_pending",
                 "_active")

    def __init__(self, env: "Environment", interval: float,
                 fn: Callable[..., None], args: tuple,
                 while_pending: bool = False):
        if interval <= 0:
            raise ScheduleInPastError(
                f"periodic interval must be positive: {interval!r}")
        self.env = env
        self.interval = interval
        self.fn = fn
        self.args = args
        self.fires = 0
        self.while_pending = while_pending
        self._active = True
        env.schedule_call(interval, self._fire)

    def _fire(self) -> None:
        if not self._active:
            return
        self.fires += 1
        self.fn(*self.args)
        if self._active and not (self.while_pending
                                 and not self.env.pending_count()):
            self.env.schedule_call(self.interval, self._fire)

    def cancel(self) -> None:
        """Stop firing; the pending event becomes a no-op."""
        self._active = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self._active else "cancelled"
        return f"<PeriodicCall every {self.interval}s {state} fires={self.fires}>"


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (scheduled on the event queue) and *processed* (callbacks ran).  Use
    :meth:`succeed` or :meth:`fail` to trigger it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_pooled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._pooled = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` / the exception of :meth:`fail`."""
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        if delay == 0.0:  # reprolint: disable=RPR008 -- exact-zero sentinel: "this instant", not a computed float
            self.env._schedule_at(self, self.env._now)
        else:
            self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with an exception after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        if delay == 0.0:  # reprolint: disable=RPR008 -- exact-zero sentinel: "this instant", not a computed float
            self.env._schedule_at(self, self.env._now)
        else:
            self.env._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately;
        this removes a whole class of lost-wakeup races.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds from creation.

    The ``fn``/``args`` slots are used only when the object carries a
    :meth:`Environment.schedule_call` callback (the pool recycles one
    object shape through both roles)."""

    __slots__ = ("delay", "fn", "args")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout: {delay!r}")
        # Inlined Event.__init__ + scheduling: Timeouts are the single
        # most-allocated object in a simulation, so skip the extra calls.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        self._pooled = False
        env._seq += 1
        env._push((env._now + delay, env._seq, self))


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator's ``return`` value becomes the event value, so parent
    processes can ``result = yield env.process(child())``.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the process at the current time (fast path —
        # the init event needs none of succeed()'s re-trigger checks).
        init = Event(env)
        init._triggered = True
        init.callbacks.append(self._resume)
        env._schedule_at(init, env._now)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached (its callback
        removed) so it cannot resume the process a second time.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wake = Event(self.env)
        wake.succeed(value=Interrupt(cause))
        wake._ok = False  # deliver via throw()
        wake.add_callback(self._resume)

    # -- engine internals ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        gen = self._generator
        try:
            if event._ok:
                target = gen.send(event._value)
            else:
                exc = event._value
                target = gen.throw(exc)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # reprolint: disable=RPR007 -- a process generator can die with anything (incl. GeneratorExit/KeyboardInterrupt); all of it must be captured as the process outcome
            self._finish(False, exc)
            return
        if not isinstance(target, Event):
            # Close the generator, then report a clear error.
            gen.close()
            self._finish(False, SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"))
            return
        if target.env is not self.env:
            gen.close()
            self._finish(False, SimulationError(
                f"process {self.name!r} yielded an event from another environment"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule_at(self, self.env._now)
        if not ok and not self.callbacks:
            # Nobody is waiting on this process: surface the crash rather
            # than swallowing it (mirrors SimPy's behaviour).
            self.env._record_crash(self, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._crashes: Deque[Tuple[Process, BaseException]] = deque()
        self._timeout_pool: List[Timeout] = []
        self._profiler: Optional[Any] = None
        self._cal: Optional[CalendarQueue] = None
        self._scheduler_swaps = 0
        if scheduler is None:
            from repro.core.knobs import env_value  # lazy: core imports sim
            scheduler = env_value(SCHEDULER_ENV) or "heap"
        if scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of "
                f"{_SCHEDULERS}")
        if scheduler == "calendar":
            self._cal = CalendarQueue()
            self._push: Callable[[tuple], None] = self._cal.push
            metrics = _active_metrics()
            if metrics is not None:
                self._cal.resize_counter = metrics.counter(
                    "engine.calendar_resizes")
        else:
            # partial() keeps the heap push a single C call from the
            # Timeout hot path (no bound-method dispatch).
            self._push = partial(_heappush, self._queue)
        # Chaos first: a non-empty fault plan schedules its arm/fire/
        # recover events before anything else can, so they win (time,
        # seq) ties against frame deliveries on every scheduler/data
        # path; with no plan this is a single is-None test.
        _attach_chaos(self)
        _attach_environment(self)

    # -- scheduler backend ---------------------------------------------------
    @property
    def scheduler(self) -> str:
        """Name of the active event-queue backend."""
        return "heap" if self._cal is None else "calendar"

    @property
    def calendar_resizes(self) -> int:
        """Bucket-width resizes performed by the calendar backend (0 for
        the heap; survives a fallback swap for telemetry)."""
        cal = self._cal
        return cal.resizes if cal is not None else self._fallback_resizes

    _fallback_resizes = 0

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled — the events-simulated counter
        used for events/sec reporting (every scheduled event is
        eventually dispatched in a drained run)."""
        return self._seq

    def pending_count(self) -> int:
        """Number of not-yet-dispatched events."""
        return len(self._queue) if self._cal is None else len(self._cal)

    def swap_scheduler(self, kind: str) -> None:
        """Switch the pending-event backend mid-run.

        Only *still-pending* events migrate: an event whose callbacks
        already ran (``callbacks is None``) is filtered out, so a
        ``run(until=...)`` re-entered after the swap can never
        re-deliver an already-processed event.  Relative ``(time, seq)``
        order of the survivors is preserved exactly, so the swap is
        invisible to simulation results.
        """
        if kind not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {kind!r}; expected one of {_SCHEDULERS}")
        if kind == self.scheduler:
            return
        if self._cal is None:
            pending = [entry for entry in self._queue
                       if entry[2].callbacks is not None]
        else:
            pending = [entry for entry in self._cal.drain()
                       if entry[2].callbacks is not None]
            self._fallback_resizes = self._cal.resizes
        self._scheduler_swaps += 1
        if kind == "heap":
            self._cal = None
            _heapify(pending)
            self._queue = pending
            self._push = partial(_heappush, self._queue)
        else:
            cal = CalendarQueue()
            metrics = _active_metrics()
            if metrics is not None:
                cal.resize_counter = metrics.counter(
                    "engine.calendar_resizes")
            for entry in pending:
                cal.push(entry)
            self._queue = []
            self._cal = cal
            self._push = cal.push

    def enable_profiling(self, profiler: Any) -> None:
        """Route dispatch through the self-profiling loop.

        ``profiler`` is an :class:`~repro.telemetry.profiling.
        EngineProfiler` (or anything with the same counters).  The
        unprofiled ``run()`` path is untouched: the only cost when
        profiling is off is one ``is None`` test per ``run()`` call.
        """
        self._profiler = profiler

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event constructors ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def _fast_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pooled timeout for trusted internal callers.

        Identical semantics to :meth:`timeout` except the returned object
        is recycled through a free pool once processed, so hot model
        loops (CPU occupancy, DMA holds, wire times, poll loops) allocate
        nothing in steady state.  Callers must *only* ``yield`` the
        event and must not keep a reference to it after it fires —
        holding one would observe the object being reused for a later,
        unrelated timeout.
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout: {delay!r}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._processed = False
            ev.delay = delay
            self._seq += 1
            self._push((self._now + delay, self._seq, ev))
            return ev
        ev = Timeout(self, delay, value)
        ev._pooled = True
        return ev

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start running ``generator`` as a process."""
        return Process(self, generator, name=name)

    def _call_event(self, fn: Callable[..., None], args: tuple) -> Timeout:
        """A pooled, already-triggered event carrying a callback.

        Like :meth:`_fast_timeout` the object is recycled once processed,
        so the returned event must not be retained after it fires."""
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev._value = None
            ev._ok = True
            ev._processed = False
        else:
            ev = Timeout.__new__(Timeout)
            ev.env = self
            ev._value = None
            ev._ok = True
            ev._processed = False
            ev.delay = 0.0
            ev._pooled = True
        ev._triggered = True
        ev.callbacks = [_run_call]
        ev.fn = fn
        ev.args = args
        return ev

    def schedule_call(self, delay: float, fn: Callable[..., None],
                      *args: Any) -> Event:
        """Call ``fn(*args)`` after ``delay`` (plain callback, no process).

        The returned event is recycled through the timeout pool once it
        has fired; callers must not hold a reference past that point."""
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout: {delay!r}")
        ev = self._call_event(fn, args)
        self._seq += 1
        self._push((self._now + delay, self._seq, ev))
        return ev

    def schedule_call_at(self, at_time: float, fn: Callable[..., None],
                         *args: Any) -> Event:
        """Call ``fn(*args)`` at the absolute instant ``at_time``.

        Unlike ``schedule_call(at_time - now, ...)`` the target is used
        verbatim — no ``now + delay`` round trip — so batched data paths
        can reproduce a legacy event chain's fire times bit-exactly.
        The returned event is pool-recycled like :meth:`schedule_call`'s.
        """
        if at_time < self._now:
            raise ScheduleInPastError(
                f"cannot schedule call at {at_time!r} < now {self._now!r}")
        ev = self._call_event(fn, args)
        self._seq += 1
        self._push((at_time, self._seq, ev))
        return ev

    def every(self, interval: float, fn: Callable[..., None],
              *args: Any, while_pending: bool = False) -> PeriodicCall:
        """Call ``fn(*args)`` every ``interval`` seconds until cancelled.

        The first firing happens at ``now + interval``.  Returns the
        :class:`PeriodicCall` handle; call its :meth:`~PeriodicCall.cancel`
        to stop the ticking.  ``while_pending=True`` makes the call
        self-terminating: it re-arms only while other events remain
        pending, so drain-mode runs still finish."""
        return PeriodicCall(self, interval, fn, args,
                            while_pending=while_pending)

    # -- engine internals ---------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay!r}s in the past")
        self._seq += 1
        self._push((self._now + delay, self._seq, event))

    def _schedule_at(self, event: Event, at_time: float) -> None:
        """Fast-path scheduling at an absolute time for trusted internal
        callers: skips the negative-delay validation of :meth:`_schedule`
        (the caller guarantees ``at_time >= now``)."""
        self._seq += 1
        self._push((at_time, self._seq, event))

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self._crashes.append((process, exc))

    def _raise_crash(self) -> None:
        process, exc = self._crashes.popleft()
        raise SimulationError(
            f"process {process.name!r} crashed: {exc!r}") from exc

    # -- execution -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        if self._cal is not None:
            return self._cal.peek_time()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if self._cal is not None:
            if not self._cal:
                raise SimulationError("step() on an empty event queue")
            self._now, _, event = self._cal.pop()
        elif not self._queue:
            raise SimulationError("step() on an empty event queue")
        else:
            self._now, _, event = _heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for fn in callbacks:
                fn(event)
        if event._pooled:
            self._timeout_pool.append(event)
        if self._crashes:
            self._raise_crash()

    def run(self, until: Any = None) -> Any:
        """Run events until the queue empties, ``until`` fires or time passes.

        ``until`` may be ``None`` (drain the queue), a number (stop when the
        clock reaches it) or an :class:`Event` (stop when it fires; its
        value is returned — an exception value is raised).

        The dispatch loop is :meth:`step` inlined three ways (drain /
        until-event / horizon): per-event dispatch is the simulator's
        single hottest path, and the method-call + attribute-lookup
        overhead of delegating to ``step()`` is measurable at millions
        of events per run.  When engine self-profiling is enabled the
        whole call is handed to :meth:`_run_profiled` instead, keeping
        this loop free of instrumentation.
        """
        if self._profiler is not None:
            return self._run_profiled(until)
        if self._cal is not None:
            return self._run_calendar(until)
        queue = self._queue
        pool = self._timeout_pool
        crashes = self._crashes
        if until is None:
            while queue:
                self._now, _, event = _heappop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                if event._pooled:
                    pool.append(event)
                if crashes:
                    self._raise_crash()
            return None
        if isinstance(until, Event):
            # `callbacks` flips to None exactly when the event is
            # processed — that is the loop condition.  The no-op marks
            # `until` as waited-on so a failing process delivers its
            # exception here instead of recording an unwaited crash.
            if until.callbacks is not None:
                until.callbacks.append(_noop)
            while until.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "event queue drained before `until` event fired")
                self._now, _, event = _heappop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                if event._pooled:
                    pool.append(event)
                if crashes:
                    self._raise_crash()
            if not until._ok:
                raise until._value from None
            return until._value
        horizon = float(until)
        if horizon < self._now:
            raise ScheduleInPastError(
                f"run(until={horizon!r}) is before now={self._now!r}")
        while queue and queue[0][0] <= horizon:
            self._now, _, event = _heappop(queue)
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for fn in callbacks:
                    fn(event)
            if event._pooled:
                pool.append(event)
            if crashes:
                self._raise_crash()
        self._now = horizon
        return None

    def _run_calendar(self, until: Any = None) -> Any:
        """:meth:`run` against the calendar-queue backend (same three
        modes, same semantics).  The ready-window pop is inlined like
        the heap loops; when the queue requests a heap fallback the
        pending set migrates and the run continues there seamlessly."""
        cal = self._cal
        pool = self._timeout_pool
        crashes = self._crashes
        if until is None:
            while cal._len:
                ready = cal._ready
                while not ready:
                    cal._refill()
                    if cal.fallback_requested:
                        self.swap_scheduler("heap")
                        return self.run(until)
                    ready = cal._ready
                cal._len -= 1
                self._now, _, event = ready.pop()
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                if event._pooled:
                    pool.append(event)
                if crashes:
                    self._raise_crash()
            return None
        if isinstance(until, Event):
            if until.callbacks is not None:
                until.callbacks.append(_noop)
            while until.callbacks is not None:
                if not cal._len:
                    raise SimulationError(
                        "event queue drained before `until` event fired")
                ready = cal._ready
                while not ready:
                    cal._refill()
                    if cal.fallback_requested:
                        self.swap_scheduler("heap")
                        return self.run(until)
                    ready = cal._ready
                cal._len -= 1
                self._now, _, event = ready.pop()
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                if event._pooled:
                    pool.append(event)
                if crashes:
                    self._raise_crash()
            if not until._ok:
                raise until._value from None
            return until._value
        horizon = float(until)
        if horizon < self._now:
            raise ScheduleInPastError(
                f"run(until={horizon!r}) is before now={self._now!r}")
        while cal._len:
            if cal.peek_time() > horizon:
                break
            if cal.fallback_requested:
                self.swap_scheduler("heap")
                return self.run(horizon)
            cal._len -= 1
            self._now, _, event = cal._ready.pop()
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for fn in callbacks:
                    fn(event)
            if event._pooled:
                pool.append(event)
            if crashes:
                self._raise_crash()
        self._now = horizon
        return None

    # -- self-profiling -------------------------------------------------------
    def _step_profiled(self, prof: Any) -> None:
        """One :meth:`step` with event/heap accounting and wall-clock
        attribution of each callback to its owning component."""
        cal = self._cal
        depth = len(self._queue) if cal is None else len(cal)
        if depth > prof.heap_hwm:
            prof.heap_hwm = depth
        if cal is None:
            self._now, _, event = _heappop(self._queue)
        else:
            self._now, _, event = cal.pop()
        tname = type(event).__name__
        counts = prof.event_counts
        counts[tname] = counts.get(tname, 0) + 1
        prof.events_total += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            cb_counts = prof.callback_counts
            cb_time = prof.callback_time_s
            for fn in callbacks:
                owner = getattr(fn, "__self__", None)
                if isinstance(owner, Process):
                    label = _component_of(owner.name)
                else:
                    label = "(callback)"
                start = perf_counter()  # reprolint: disable=RPR002 -- profiler wall-clock accounting; never feeds back into sim state
                fn(event)
                elapsed = perf_counter() - start  # reprolint: disable=RPR002 -- profiler wall-clock accounting; never feeds back into sim state
                cb_counts[label] = cb_counts.get(label, 0) + 1
                cb_time[label] = cb_time.get(label, 0.0) + elapsed
        if event._pooled:
            self._timeout_pool.append(event)
        if self._crashes:
            self._raise_crash()

    def _run_profiled(self, until: Any = None) -> Any:
        """:meth:`run` with the profiled dispatch loop (same three
        modes, same semantics, plus accounting)."""
        prof = self._profiler
        run_start = perf_counter()  # reprolint: disable=RPR002 -- profiler wall-clock accounting; never feeds back into sim state
        try:
            if until is None:
                while self.pending_count():
                    self._step_profiled(prof)
                return None
            if isinstance(until, Event):
                if until.callbacks is not None:
                    until.callbacks.append(_noop)
                while until.callbacks is not None:
                    if not self.pending_count():
                        raise SimulationError(
                            "event queue drained before `until` event fired")
                    self._step_profiled(prof)
                if not until._ok:
                    raise until._value from None
                return until._value
            horizon = float(until)
            if horizon < self._now:
                raise ScheduleInPastError(
                    f"run(until={horizon!r}) is before now={self._now!r}")
            while self.pending_count() and self.peek() <= horizon:
                self._step_profiled(prof)
            self._now = horizon
            return None
        finally:
            prof.wall_time_s += perf_counter() - run_start  # reprolint: disable=RPR002 -- profiler wall-clock accounting; never feeds back into sim state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Environment now={self._now:.9f} "
                f"pending={self.pending_count()} "
                f"scheduler={self.scheduler}>")
