"""Discrete-event simulation core: environment, events and processes.

Design notes
------------

* The event queue is a binary heap of ``(time, sequence, Event)`` tuples.
  The monotonically increasing sequence number guarantees FIFO ordering
  among same-time events, so runs are bit-for-bit deterministic.
* Processes are plain Python generators.  A process yields an
  :class:`Event`; the engine registers the process as a callback and
  resumes it (``send``/``throw``) when the event fires.  This is the same
  execution model as SimPy's, reduced to the features the repro needs.
* Following the profiling guidance in the HPC-Python guides the hot path
  (the dispatch loop inlined into ``Environment.run``) avoids attribute
  lookups in the inner loop and allocates nothing beyond the events
  themselves.  Internal model code can additionally use
  :meth:`Environment._fast_timeout`, which recycles processed
  :class:`Timeout` objects through a free pool instead of allocating a
  fresh one per event.
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import ScheduleInPastError, SimulationError
from repro.telemetry.profiling import component_of as _component_of
from repro.telemetry.session import attach_environment as _attach_environment

__all__ = ["Environment", "Event", "Timeout", "Process", "Interrupt"]

_heappush = heapq.heappush
_heappop = heapq.heappop


def _noop(event: "Event") -> None:
    """Marker callback: registers interest in an event without acting."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (scheduled on the event queue) and *processed* (callbacks ran).  Use
    :meth:`succeed` or :meth:`fail` to trigger it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_pooled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._pooled = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` / the exception of :meth:`fail`."""
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        if delay == 0.0:
            self.env._schedule_at(self, self.env._now)
        else:
            self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with an exception after ``delay``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        if delay == 0.0:
            self.env._schedule_at(self, self.env._now)
        else:
            self.env._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately;
        this removes a whole class of lost-wakeup races.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds from creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout: {delay!r}")
        # Inlined Event.__init__ + scheduling: Timeouts are the single
        # most-allocated object in a simulation, so skip the extra calls.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        self._pooled = False
        env._seq += 1
        _heappush(env._queue, (env._now + delay, env._seq, self))


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The generator's ``return`` value becomes the event value, so parent
    processes can ``result = yield env.process(child())``.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the process at the current time (fast path —
        # the init event needs none of succeed()'s re-trigger checks).
        init = Event(env)
        init._triggered = True
        init.callbacks.append(self._resume)
        env._schedule_at(init, env._now)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached (its callback
        removed) so it cannot resume the process a second time.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wake = Event(self.env)
        wake.succeed(value=Interrupt(cause))
        wake._ok = False  # deliver via throw()
        wake.add_callback(self._resume)

    # -- engine internals ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        gen = self._generator
        try:
            if event._ok:
                target = gen.send(event._value)
            else:
                exc = event._value
                target = gen.throw(exc)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # process died with an error
            self._finish(False, exc)
            return
        if not isinstance(target, Event):
            # Close the generator, then report a clear error.
            gen.close()
            self._finish(False, SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"))
            return
        if target.env is not self.env:
            gen.close()
            self._finish(False, SimulationError(
                f"process {self.name!r} yielded an event from another environment"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule_at(self, self.env._now)
        if not ok and not self.callbacks:
            # Nobody is waiting on this process: surface the crash rather
            # than swallowing it (mirrors SimPy's behaviour).
            self.env._record_crash(self, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._crashes: Deque[Tuple[Process, BaseException]] = deque()
        self._timeout_pool: List[Timeout] = []
        self._profiler: Optional[Any] = None
        _attach_environment(self)

    def enable_profiling(self, profiler: Any) -> None:
        """Route dispatch through the self-profiling loop.

        ``profiler`` is an :class:`~repro.telemetry.profiling.
        EngineProfiler` (or anything with the same counters).  The
        unprofiled ``run()`` path is untouched: the only cost when
        profiling is off is one ``is None`` test per ``run()`` call.
        """
        self._profiler = profiler

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # -- event constructors ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def _fast_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pooled timeout for trusted internal callers.

        Identical semantics to :meth:`timeout` except the returned object
        is recycled through a free pool once processed, so hot model
        loops (CPU occupancy, DMA holds, wire times, poll loops) allocate
        nothing in steady state.  Callers must *only* ``yield`` the
        event and must not keep a reference to it after it fires —
        holding one would observe the object being reused for a later,
        unrelated timeout.
        """
        if delay < 0:
            raise ScheduleInPastError(f"negative timeout: {delay!r}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._processed = False
            ev.delay = delay
            self._seq += 1
            _heappush(self._queue, (self._now + delay, self._seq, ev))
            return ev
        ev = Timeout(self, delay, value)
        ev._pooled = True
        return ev

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Start running ``generator`` as a process."""
        return Process(self, generator, name=name)

    def schedule_call(self, delay: float, fn: Callable[..., None],
                      *args: Any) -> Event:
        """Call ``fn(*args)`` after ``delay`` (plain callback, no process)."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    # -- engine internals ---------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise ScheduleInPastError(
                f"cannot schedule event {delay!r}s in the past")
        self._seq += 1
        _heappush(self._queue, (self._now + delay, self._seq, event))

    def _schedule_at(self, event: Event, at_time: float) -> None:
        """Fast-path scheduling at an absolute time for trusted internal
        callers: skips the negative-delay validation of :meth:`_schedule`
        (the caller guarantees ``at_time >= now``)."""
        self._seq += 1
        _heappush(self._queue, (at_time, self._seq, event))

    def _record_crash(self, process: Process, exc: BaseException) -> None:
        self._crashes.append((process, exc))

    def _raise_crash(self) -> None:
        process, exc = self._crashes.popleft()
        raise SimulationError(
            f"process {process.name!r} crashed: {exc!r}") from exc

    # -- execution -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, event = _heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for fn in callbacks:
                fn(event)
        if event._pooled:
            self._timeout_pool.append(event)
        if self._crashes:
            self._raise_crash()

    def run(self, until: Any = None) -> Any:
        """Run events until the queue empties, ``until`` fires or time passes.

        ``until`` may be ``None`` (drain the queue), a number (stop when the
        clock reaches it) or an :class:`Event` (stop when it fires; its
        value is returned — an exception value is raised).

        The dispatch loop is :meth:`step` inlined three ways (drain /
        until-event / horizon): per-event dispatch is the simulator's
        single hottest path, and the method-call + attribute-lookup
        overhead of delegating to ``step()`` is measurable at millions
        of events per run.  When engine self-profiling is enabled the
        whole call is handed to :meth:`_run_profiled` instead, keeping
        this loop free of instrumentation.
        """
        if self._profiler is not None:
            return self._run_profiled(until)
        queue = self._queue
        pool = self._timeout_pool
        crashes = self._crashes
        if until is None:
            while queue:
                self._now, _, event = _heappop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                if event._pooled:
                    pool.append(event)
                if crashes:
                    self._raise_crash()
            return None
        if isinstance(until, Event):
            # `callbacks` flips to None exactly when the event is
            # processed — that is the loop condition.  The no-op marks
            # `until` as waited-on so a failing process delivers its
            # exception here instead of recording an unwaited crash.
            if until.callbacks is not None:
                until.callbacks.append(_noop)
            while until.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "event queue drained before `until` event fired")
                self._now, _, event = _heappop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                if event._pooled:
                    pool.append(event)
                if crashes:
                    self._raise_crash()
            if not until._ok:
                raise until._value from None
            return until._value
        horizon = float(until)
        if horizon < self._now:
            raise ScheduleInPastError(
                f"run(until={horizon!r}) is before now={self._now!r}")
        while queue and queue[0][0] <= horizon:
            self._now, _, event = _heappop(queue)
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for fn in callbacks:
                    fn(event)
            if event._pooled:
                pool.append(event)
            if crashes:
                self._raise_crash()
        self._now = horizon
        return None

    # -- self-profiling -------------------------------------------------------
    def _step_profiled(self, prof: Any) -> None:
        """One :meth:`step` with event/heap accounting and wall-clock
        attribution of each callback to its owning component."""
        queue = self._queue
        depth = len(queue)
        if depth > prof.heap_hwm:
            prof.heap_hwm = depth
        self._now, _, event = _heappop(queue)
        tname = type(event).__name__
        counts = prof.event_counts
        counts[tname] = counts.get(tname, 0) + 1
        prof.events_total += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            cb_counts = prof.callback_counts
            cb_time = prof.callback_time_s
            for fn in callbacks:
                owner = getattr(fn, "__self__", None)
                if isinstance(owner, Process):
                    label = _component_of(owner.name)
                else:
                    label = "(callback)"
                start = perf_counter()
                fn(event)
                elapsed = perf_counter() - start
                cb_counts[label] = cb_counts.get(label, 0) + 1
                cb_time[label] = cb_time.get(label, 0.0) + elapsed
        if event._pooled:
            self._timeout_pool.append(event)
        if self._crashes:
            self._raise_crash()

    def _run_profiled(self, until: Any = None) -> Any:
        """:meth:`run` with the profiled dispatch loop (same three
        modes, same semantics, plus accounting)."""
        prof = self._profiler
        queue = self._queue
        run_start = perf_counter()
        try:
            if until is None:
                while queue:
                    self._step_profiled(prof)
                return None
            if isinstance(until, Event):
                if until.callbacks is not None:
                    until.callbacks.append(_noop)
                while until.callbacks is not None:
                    if not queue:
                        raise SimulationError(
                            "event queue drained before `until` event fired")
                    self._step_profiled(prof)
                if not until._ok:
                    raise until._value from None
                return until._value
            horizon = float(until)
            if horizon < self._now:
                raise ScheduleInPastError(
                    f"run(until={horizon!r}) is before now={self._now!r}")
            while queue and queue[0][0] <= horizon:
                self._step_profiled(prof)
            self._now = horizon
            return None
        finally:
            prof.wall_time_s += perf_counter() - run_start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment now={self._now:.9f} pending={len(self._queue)}>"
