"""Time-series instrumentation for simulations.

Monitors are append-only recorders that convert to numpy arrays lazily —
the hot simulation loop pays only a ``list.append``, and all statistics
are computed vectorised afterwards (per the HPC-Python guidance of moving
work out of inner loops).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.sim.engine import Environment

__all__ = ["Monitor", "CounterMonitor", "UtilizationMonitor"]


class Monitor:
    """Records ``(time, value)`` samples."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, value: float, time: Optional[float] = None) -> None:
        """Append a sample at ``time`` (default: now)."""
        self._times.append(self.env.now if time is None else time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The samples as ``(times, values)`` float arrays."""
        return (np.asarray(self._times, dtype=float),
                np.asarray(self._values, dtype=float))

    # -- statistics -------------------------------------------------------------
    def _require_samples(self) -> np.ndarray:
        if not self._values:
            raise MeasurementError(f"monitor {self.name!r} has no samples")
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        """Arithmetic mean of the recorded values."""
        return float(self._require_samples().mean())

    def max(self) -> float:
        """Largest recorded value."""
        return float(self._require_samples().max())

    def min(self) -> float:
        """Smallest recorded value."""
        return float(self._require_samples().min())

    def std(self) -> float:
        """Population standard deviation of the recorded values."""
        return float(self._require_samples().std())

    def time_average(self, until: Optional[float] = None) -> float:
        """Piecewise-constant time average of the signal.

        Each recorded value is held until the next sample; the last value
        is held until ``until`` (default: now).
        """
        values = self._require_samples()
        times = np.asarray(self._times, dtype=float)
        end = self.env.now if until is None else until
        edges = np.append(times, end)
        widths = np.diff(edges)
        if widths.sum() <= 0:
            return float(values[-1])
        return float(np.dot(values, widths) / widths.sum())

    def rate(self) -> float:
        """Total of values divided by the recording span (a throughput)."""
        values = self._require_samples()
        span = self._times[-1] - self._times[0]
        if span <= 0:
            raise MeasurementError(
                f"monitor {self.name!r} span is zero; cannot compute a rate")
        return float(values.sum() / span)


class CounterMonitor:
    """A cheap running counter with first/last-event timestamps."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self.total = 0.0
        self.events = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def add(self, amount: float = 1.0, time: Optional[float] = None) -> None:
        """Accumulate ``amount`` at the current time (or an explicit
        ``time`` — batched data paths stamp the instant the modelled
        action completed, which may precede the callback running)."""
        now = self.env.now if time is None else time
        if self.first_time is None:
            self.first_time = now
        self.last_time = now
        self.total += amount
        self.events += 1

    def rate(self, start: Optional[float] = None,
             end: Optional[float] = None) -> float:
        """``total / (end - start)``; defaults to the observed span."""
        if self.first_time is None:
            raise MeasurementError(f"counter {self.name!r} never fired")
        t0 = self.first_time if start is None else start
        t1 = self.last_time if end is None else end
        span = t1 - t0
        if span <= 0:
            raise MeasurementError(
                f"counter {self.name!r} span is zero; cannot compute a rate")
        return self.total / span


class UtilizationMonitor:
    """Tracks the busy fraction of an on/off signal (e.g. CPU load)."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._level = 0
        self._since = env.now
        self._busy = 0.0
        self._start = env.now

    def enter(self) -> None:
        """The monitored entity became (more) busy."""
        self._accumulate()
        self._level += 1

    def exit(self) -> None:
        """The monitored entity became (less) busy."""
        if self._level <= 0:
            raise MeasurementError(
                f"utilization monitor {self.name!r}: exit() without enter()")
        self._accumulate()
        self._level -= 1

    def _accumulate(self) -> None:
        now = self.env.now
        if self._level > 0:
            self._busy += now - self._since
        self._since = now

    def utilization(self) -> float:
        """Busy fraction since construction (0..1 for a single server)."""
        self._accumulate()
        elapsed = self.env.now - self._start
        if elapsed <= 0:
            return 0.0
        return self._busy / elapsed
