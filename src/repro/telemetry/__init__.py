"""Unified telemetry: metrics registry, trace plumbing, exporters,
per-connection timelines, live streaming and engine self-profiling.

Quick tour::

    from repro.telemetry import telemetry_session, write_chrome_trace

    with telemetry_session(trace=True, profile=True) as session:
        run_experiment("fig3")
    write_chrome_trace(session.events, "out.json")
    print(format_metrics_table(session.registry))
    print(session.profile.render_table())

Live streaming (see ``docs/OBSERVABILITY.md``, "Live streaming &
replay")::

    from repro.telemetry import TelemetryBus, RunRecorder

    bus = TelemetryBus()
    with RunRecorder(bus, "out.reprorun") as rec, \\
            telemetry_session(trace=True, bus=bus):
        run_experiment("fig3")
    bundle = rec.close()

See ``docs/OBSERVABILITY.md`` for the instrumentation-point catalog
and a Perfetto walkthrough.
"""

from repro.telemetry.exporters import (chrome_trace_dict, read_jsonl,
                                       write_chrome_trace, write_jsonl)
from repro.telemetry.points import (CATALOG, InstrumentationPoint, layer_of,
                                    render_catalog_markdown)
from repro.telemetry.profiling import EngineProfiler
from repro.telemetry.registry import (Counter, Gauge, Histogram,
                                      MetricsRegistry, diff_snapshots,
                                      format_metrics_table, merge_snapshots)
from repro.telemetry.session import (TelemetrySession, active_bus,
                                     active_metrics, active_session,
                                     attach_environment, nested_session,
                                     register_trace, telemetry_session)
from repro.telemetry.stream import (BUNDLE_FORMAT, RunBundle, RunRecorder,
                                    StreamTap, Subscription, TelemetryBus,
                                    load_bundle, stream_tick_s)
from repro.telemetry.timeline import (TimelineFolder, build_timelines,
                                      write_timeline)

__all__ = [
    "CATALOG", "InstrumentationPoint", "layer_of", "render_catalog_markdown",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "format_metrics_table", "merge_snapshots", "diff_snapshots",
    "EngineProfiler",
    "TelemetrySession", "telemetry_session", "nested_session",
    "active_session", "active_metrics", "active_bus", "register_trace",
    "attach_environment",
    "TelemetryBus", "Subscription", "StreamTap", "RunRecorder", "RunBundle",
    "load_bundle", "BUNDLE_FORMAT", "stream_tick_s",
    "write_jsonl", "read_jsonl", "chrome_trace_dict", "write_chrome_trace",
    "build_timelines", "write_timeline", "TimelineFolder",
]
