"""Unified telemetry: metrics registry, trace plumbing, exporters,
per-connection timelines and engine self-profiling.

Quick tour::

    from repro.telemetry import telemetry_session, write_chrome_trace

    with telemetry_session(trace=True, profile=True) as session:
        run_experiment("fig3")
    write_chrome_trace(session.events, "out.json")
    print(format_metrics_table(session.registry))
    print(session.profile.render_table())

See ``docs/OBSERVABILITY.md`` for the instrumentation-point catalog
and a Perfetto walkthrough.
"""

from repro.telemetry.exporters import (chrome_trace_dict, read_jsonl,
                                       write_chrome_trace, write_jsonl)
from repro.telemetry.points import CATALOG, InstrumentationPoint, layer_of
from repro.telemetry.profiling import EngineProfiler
from repro.telemetry.registry import (Counter, Gauge, Histogram,
                                      MetricsRegistry, format_metrics_table,
                                      merge_snapshots)
from repro.telemetry.session import (TelemetrySession, active_metrics,
                                     active_session, attach_environment,
                                     nested_session, register_trace,
                                     telemetry_session)
from repro.telemetry.timeline import build_timelines, write_timeline

__all__ = [
    "CATALOG", "InstrumentationPoint", "layer_of",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "format_metrics_table", "merge_snapshots",
    "EngineProfiler",
    "TelemetrySession", "telemetry_session", "nested_session",
    "active_session", "active_metrics", "register_trace",
    "attach_environment",
    "write_jsonl", "read_jsonl", "chrome_trace_dict", "write_chrome_trace",
    "build_timelines", "write_timeline",
]
