"""Trace exporters: JSONL event dumps and Chrome ``trace_event`` JSON.

The Chrome format targets Perfetto / ``chrome://tracing``: one *thread*
(track) per simulated component, instant events (``ph: "i"``) for every
instrumentation point, and counter tracks (``ph: "C"``) for congestion
windows so cwnd evolution plots directly in the UI.  Timestamps are
microseconds, matching the tooling's expectations; simulation time zero
maps to trace time zero.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.telemetry.points import layer_of
from repro.telemetry.session import EventTuple

__all__ = ["write_jsonl", "read_jsonl", "chrome_trace_dict",
           "write_chrome_trace"]

PathLike = Union[str, pathlib.Path]


def _event_record(event: EventTuple) -> Dict[str, Any]:
    track, time, point, subject, detail = event
    return {"track": track, "time": time, "point": point,
            "subject": subject, "detail": detail}


def write_jsonl(events: Iterable[EventTuple], path: PathLike) -> int:
    """Dump events one-JSON-object-per-line; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(_event_record(event), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> List[EventTuple]:
    """Parse a :func:`write_jsonl` dump back into event tuples."""
    events: List[EventTuple] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            events.append((rec["track"], rec["time"], rec["point"],
                           rec["subject"], rec["detail"]))
    return events


def chrome_trace_dict(events: Sequence[EventTuple]) -> Dict[str, Any]:
    """Build the ``trace_event`` JSON object for ``events``.

    * one ``thread_name`` metadata record per track (tids assigned in
      sorted-track order, so output is deterministic),
    * ``ph: "i"`` thread-scoped instants for every point,
    * ``ph: "C"`` counter samples for ``tcp.cwnd.update`` events, keyed
      per connection, charting cwnd/ssthresh over time.
    """
    tracks = sorted({track for track, *_ in events})
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}
    records: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 1, "tid": tids[t], "name": "thread_name",
         "args": {"name": t}}
        for t in tracks
    ]
    for track, time, point, subject, detail in events:
        ts = round(time * 1e6, 3)
        args: Dict[str, Any] = dict(detail)
        if subject is not None:
            args["subject"] = subject
        records.append({"ph": "i", "s": "t", "pid": 1, "tid": tids[track],
                        "ts": ts, "name": point, "cat": layer_of(point),
                        "args": args})
        if point == "tcp.cwnd.update":
            conn = detail.get("conn", subject)
            counter_args = {"cwnd": detail.get("cwnd", 0)}
            if "ssthresh" in detail:
                counter_args["ssthresh"] = detail["ssthresh"]
            records.append({"ph": "C", "pid": 1, "tid": tids[track],
                            "ts": ts, "name": f"cwnd {conn}",
                            "args": counter_args})
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[EventTuple], path: PathLike) -> int:
    """Write a Perfetto-loadable trace; returns the record count."""
    doc = chrome_trace_dict(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
