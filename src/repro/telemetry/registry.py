"""The metrics registry: counters, gauges and histograms with labels.

Every layer of the simulator — PCI-X bus, NIC, interrupt path, sk_buff
accounting, copy engine, switch, WAN routers, TCP endpoints — registers
its series into one :class:`MetricsRegistry` instead of keeping ad-hoc
per-class tallies that nothing can enumerate.  A registry is cheap to
create and fully picklable through :meth:`MetricsRegistry.snapshot`, so
sweep workers ship their metrics back to the parent process where they
are merged deterministically (see :mod:`repro.telemetry.session`).

Merge semantics are chosen for cross-worker aggregation:

* counters add,
* histograms add bucket-wise (same bucket edges required),
* gauges keep the merge-order last value plus running min/max — the
  max is what high-water-mark gauges (queue depths, cwnd) care about.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import MeasurementError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "merge_snapshots", "diff_snapshots", "format_metrics_table"]

#: Default histogram bucket upper bounds (powers of two: batch sizes,
#: burst counts and queue depths all live comfortably on this grid).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must not be negative)."""
        self.value += amount

    def _data(self) -> Dict[str, Any]:
        return {"value": self.value}

    def _merge(self, data: Dict[str, Any]) -> None:
        self.value += data["value"]


class Gauge:
    """A spot value with running min/max (high-water marks)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "max", "min", "_touched")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = float("-inf")
        self.min = float("inf")
        self._touched = False

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        self._touched = True

    def set_max(self, value: float) -> None:
        """Record only if ``value`` exceeds the high-water mark."""
        if value > self.max:
            self.set(value)

    def _data(self) -> Dict[str, Any]:
        return {"value": self.value, "max": self.max, "min": self.min,
                "touched": self._touched}

    def _merge(self, data: Dict[str, Any]) -> None:
        if data.get("touched"):
            self.value = data["value"]
            self._touched = True
        self.max = max(self.max, data["max"])
        self.min = min(self.min, data["min"])


class Histogram:
    """A fixed-bucket distribution (plus exact count and sum)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, labels: LabelItems,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise MeasurementError(
                f"histogram {name!r}: buckets must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += value
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def _data(self) -> Dict[str, Any]:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}

    def _merge(self, data: Dict[str, Any]) -> None:
        if tuple(data["buckets"]) != self.buckets:
            raise MeasurementError(
                f"histogram {self.name!r}: cannot merge different buckets")
        self.counts = [a + b for a, b in zip(self.counts, data["counts"])]
        self.count += data["count"]
        self.sum += data["sum"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A labelled family of counters, gauges and histograms.

    The same ``(name, labels)`` pair always returns the same metric
    object, so components can look their series up at construction time
    and increment a plain attribute afterwards.  Requesting an existing
    name with a different kind raises — one name, one kind.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, m.labels)))

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
            return metric
        if not isinstance(metric, cls):
            raise MeasurementError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- snapshots -------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Picklable, deterministic dump: one dict per series, sorted by
        ``(name, labels)``."""
        return [{"kind": m.kind, "name": m.name,
                 "labels": dict(m.labels), "data": m._data()}
                for m in self]

    def merge_snapshot(self, snapshot: List[Dict[str, Any]]) -> None:
        """Fold a snapshot (e.g. from a sweep worker) into this registry.

        Series absent here are created; present ones merge by kind
        (counters add, histograms add bucket-wise, gauges min/max/last).
        """
        for entry in snapshot:
            cls = _KINDS[entry["kind"]]
            kwargs = {}
            if cls is Histogram:
                kwargs["buckets"] = tuple(entry["data"]["buckets"])
            metric = self._get(cls, entry["name"], entry["labels"], **kwargs)
            metric._merge(entry["data"])

    def clear(self) -> None:
        """Drop every registered series."""
        self._metrics.clear()


def merge_snapshots(snapshots: Sequence[List[Dict[str, Any]]]
                    ) -> List[Dict[str, Any]]:
    """Merge snapshots in the given order into one combined snapshot."""
    combined = MetricsRegistry()
    for snap in snapshots:
        combined.merge_snapshot(snap)
    return combined.snapshot()


def diff_snapshots(old: Sequence[Dict[str, Any]],
                   new: Sequence[Dict[str, Any]]
                   ) -> List[Dict[str, Any]]:
    """The series in ``new`` that are absent from ``old`` or changed.

    Entries compare by ``(name, labels)`` identity and by their
    ``data`` payload, so an untouched series costs one dict lookup and
    one equality test.  This is the delta the live streaming tap ships
    each heartbeat instead of re-sending the whole registry (see
    :mod:`repro.telemetry.stream`); snapshots are already sorted, so
    the returned delta is deterministic too.
    """
    if not old:
        return list(new)
    index = {(e["name"], _label_key(e["labels"])): e["data"] for e in old}
    return [e for e in new
            if index.get((e["name"], _label_key(e["labels"]))) != e["data"]]


def _fmt_value(v: float) -> str:
    if v in (float("inf"), float("-inf")):
        return "-"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def format_metrics_table(source: Any, title: str = "Metrics") -> str:
    """Render a registry or snapshot as a deterministic text table."""
    if isinstance(source, MetricsRegistry):
        snapshot = source.snapshot()
    else:
        snapshot = list(source)
    rows = []
    for entry in snapshot:
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        data = entry["data"]
        if entry["kind"] == "counter":
            value = _fmt_value(data["value"])
        elif entry["kind"] == "gauge":
            value = (f"last={_fmt_value(data['value'])}"
                     f" max={_fmt_value(data['max'])}")
        else:
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            value = f"n={count} mean={mean:.3g}"
        rows.append((entry["name"], entry["kind"], labels, value))
    if not rows:
        return f"{title}: (no series recorded)"
    widths = [max(len(r[i]) for r in rows + [("metric", "kind", "labels", "value")])
              for i in range(4)]
    lines = [title, "-" * len(title),
             "  ".join(h.ljust(w) for h, w in
                       zip(("metric", "kind", "labels", "value"), widths))]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
