"""Engine self-profiling: where did the simulation's wall-clock go?

An :class:`EngineProfiler` attaches to an :class:`~repro.sim.engine.
Environment` (via ``Environment.enable_profiling``) and records, per
processed event:

* event counts by event type (``Timeout``, ``Event``, ``Process``),
* callback counts and wall-clock seconds attributed to the *component*
  that ran — derived from the process name by stripping the instance
  prefix (``hostA.tcp.pump`` → ``tcp.pump``) so all hosts' senders
  aggregate into one row,
* the heap-depth high-water mark (pending events at dispatch).

Profiling uses a separate dispatch loop in the engine, so a simulation
that never enables it pays exactly one ``is None`` check per ``run()``
call — not per event.  Wall-clock numbers are *not* deterministic
across runs or workers; they are reported separately from the metrics
table, which must stay bit-identical serial vs parallel.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["EngineProfiler"]


def component_of(name: str) -> str:
    """Aggregation key for a process name.

    Strips the per-object ``#ident`` suffix and the leading instance
    segment: ``hostA.tcp.pump`` → ``tcp.pump``, ``oc192#17`` → ``oc192``,
    ``pktgen`` → ``pktgen``.
    """
    name = name.split("#", 1)[0]
    head, sep, rest = name.partition(".")
    return rest if sep else head


class EngineProfiler:
    """Mutable per-environment profile; picklable and mergeable."""

    __slots__ = ("event_counts", "callback_counts", "callback_time_s",
                 "heap_hwm", "events_total", "wall_time_s")

    def __init__(self) -> None:
        self.event_counts: Dict[str, int] = {}
        self.callback_counts: Dict[str, int] = {}
        self.callback_time_s: Dict[str, float] = {}
        self.heap_hwm = 0
        self.events_total = 0
        self.wall_time_s = 0.0

    # -- aggregation across environments / workers -------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict dump, safe to pickle across process boundaries."""
        return {
            "event_counts": dict(self.event_counts),
            "callback_counts": dict(self.callback_counts),
            "callback_time_s": dict(self.callback_time_s),
            "heap_hwm": self.heap_hwm,
            "events_total": self.events_total,
            "wall_time_s": self.wall_time_s,
        }

    def merge_snapshot(self, data: Dict[str, Any]) -> None:
        """Fold another profiler's snapshot into this one."""
        for key, n in data["event_counts"].items():
            self.event_counts[key] = self.event_counts.get(key, 0) + n
        for key, n in data["callback_counts"].items():
            self.callback_counts[key] = self.callback_counts.get(key, 0) + n
        for key, t in data["callback_time_s"].items():
            self.callback_time_s[key] = self.callback_time_s.get(key, 0.0) + t
        self.heap_hwm = max(self.heap_hwm, data["heap_hwm"])
        self.events_total += data["events_total"]
        self.wall_time_s += data["wall_time_s"]

    def merge(self, other: "EngineProfiler") -> None:
        """Fold another profiler into this one."""
        self.merge_snapshot(other.snapshot())

    # -- reporting ----------------------------------------------------------
    def render_table(self) -> str:
        """The "where did the time go" text table."""
        lines: List[str] = ["Engine profile", "--------------"]
        lines.append(f"events processed : {self.events_total}")
        lines.append(f"heap high-water  : {self.heap_hwm}")
        lines.append(f"dispatch wall    : {self.wall_time_s * 1e3:.2f} ms")
        if self.event_counts:
            lines.append("event types:")
            for key in sorted(self.event_counts):
                lines.append(f"  {key:<20s} {self.event_counts[key]}")
        if self.callback_counts:
            total_t = sum(self.callback_time_s.values()) or 1.0
            lines.append("wall-clock by component:")
            rows = sorted(self.callback_time_s.items(),
                          key=lambda kv: (-kv[1], kv[0]))
            for key, t in rows:
                n = self.callback_counts.get(key, 0)
                lines.append(f"  {key:<24s} {t * 1e3:8.2f} ms "
                             f"{100.0 * t / total_t:5.1f}%  "
                             f"({n} callbacks)")
        return "\n".join(lines)
