"""tcptrace-style per-connection timelines.

``tcptrace`` turns a packet capture into time-sequence graphs: data
segments, ACKs and retransmits against time, with the congestion window
alongside.  :func:`build_timelines` produces the same series from the
``tcp.*`` instrumentation points, keyed by connection label, ready for
plotting (each series is a list of ``[time, ...]`` rows).

:class:`TimelineFolder` is the incremental core: it folds one event at
a time, so a *streaming* consumer (the observer server's replay
endpoint, a live dashboard) can keep timelines current as events
arrive instead of re-scanning the whole run per refresh.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Sequence, Union

from repro.telemetry.session import EventTuple

__all__ = ["TimelineFolder", "build_timelines", "write_timeline"]

PathLike = Union[str, pathlib.Path]

#: point -> (series name, detail fields recorded after the timestamp)
_SERIES = {
    "tcp.tx.segment": ("segments", ("seq", "len")),
    "tcp.tx.retransmit": ("retransmits", ("seq", "len")),
    "tcp.rx.ack": ("acks", ("ack",)),
    "tcp.rx.deliver": ("deliveries", ("nbytes",)),
    "tcp.cwnd.update": ("cwnd", ("cwnd", "ssthresh")),
}


def _conn_label(track: str, subject: Any, detail: Dict[str, Any]) -> str:
    conn = detail.get("conn")
    if conn is None:
        conn = subject if isinstance(subject, str) else track
    return str(conn)


class TimelineFolder:
    """Folds trace events into per-connection series, one at a time.

    Feed it event tuples (:meth:`add`) or streamed bus event dicts
    (:meth:`add_stream_event`) in any order; :meth:`document` sorts
    each series by time and returns the same ``repro-timeline-v1``
    payload as :func:`build_timelines`.
    """

    def __init__(self):
        self.connections: Dict[str, Dict[str, List[List[Any]]]] = {}
        self.folded = 0

    def add(self, track: str, time: float, point: str, subject: Any,
            detail: Dict[str, Any]) -> bool:
        """Fold one event; returns whether it contributed to a series."""
        series = _SERIES.get(point)
        if series is None:
            return False
        name, fields = series
        conn = _conn_label(track, subject, detail)
        entry = self.connections.setdefault(conn, {
            "segments": [], "retransmits": [], "acks": [],
            "deliveries": [], "cwnd": [],
        })
        entry[name].append([time] + [detail.get(f) for f in fields])
        self.folded += 1
        return True

    def add_stream_event(self, event: Dict[str, Any]) -> bool:
        """Fold one bus/bundle event dict (ignores non-trace kinds)."""
        if event.get("kind") != "trace":
            return False
        return self.add(event["track"], event["time"], event["point"],
                        event.get("subject"), event.get("detail", {}))

    def document(self) -> Dict[str, Any]:
        """The plottable ``repro-timeline-v1`` document (sorted rows)."""
        for entry in self.connections.values():
            for rows in entry.values():
                rows.sort(key=lambda row: row[0])
        return {"format": "repro-timeline-v1",
                "connections": self.connections}


def build_timelines(events: Sequence[EventTuple]) -> Dict[str, Any]:
    """Group ``tcp.*`` events into per-connection plottable series."""
    folder = TimelineFolder()
    for track, time, point, subject, detail in events:
        folder.add(track, time, point, subject, detail)
    return folder.document()


def write_timeline(events: Sequence[EventTuple], path: PathLike) -> int:
    """Write per-connection timelines as JSON; returns the connection
    count."""
    doc = build_timelines(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
    return len(doc["connections"])
