"""tcptrace-style per-connection timelines.

``tcptrace`` turns a packet capture into time-sequence graphs: data
segments, ACKs and retransmits against time, with the congestion window
alongside.  :func:`build_timelines` produces the same series from the
``tcp.*`` instrumentation points, keyed by connection label, ready for
plotting (each series is a list of ``[time, ...]`` rows).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Sequence, Union

from repro.telemetry.session import EventTuple

__all__ = ["build_timelines", "write_timeline"]

PathLike = Union[str, pathlib.Path]

#: point -> (series name, detail fields recorded after the timestamp)
_SERIES = {
    "tcp.tx.segment": ("segments", ("seq", "len")),
    "tcp.tx.retransmit": ("retransmits", ("seq", "len")),
    "tcp.rx.ack": ("acks", ("ack",)),
    "tcp.rx.deliver": ("deliveries", ("nbytes",)),
    "tcp.cwnd.update": ("cwnd", ("cwnd", "ssthresh")),
}


def _conn_label(track: str, subject: Any, detail: Dict[str, Any]) -> str:
    conn = detail.get("conn")
    if conn is None:
        conn = subject if isinstance(subject, str) else track
    return str(conn)


def build_timelines(events: Sequence[EventTuple]) -> Dict[str, Any]:
    """Group ``tcp.*`` events into per-connection plottable series."""
    connections: Dict[str, Dict[str, List[List[Any]]]] = {}
    for track, time, point, subject, detail in events:
        series = _SERIES.get(point)
        if series is None:
            continue
        name, fields = series
        conn = _conn_label(track, subject, detail)
        entry = connections.setdefault(conn, {
            "segments": [], "retransmits": [], "acks": [],
            "deliveries": [], "cwnd": [],
        })
        entry[name].append([time] + [detail.get(f) for f in fields])
    for entry in connections.values():
        for rows in entry.values():
            rows.sort(key=lambda row: row[0])
    return {"format": "repro-timeline-v1", "connections": connections}


def write_timeline(events: Sequence[EventTuple], path: PathLike) -> int:
    """Write per-connection timelines as JSON; returns the connection
    count."""
    doc = build_timelines(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
    return len(doc["connections"])
