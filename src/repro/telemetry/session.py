"""Ambient telemetry session: one switchboard for a whole run.

A :class:`TelemetrySession` is activated with :func:`telemetry_session`
around an experiment.  While active, instrumented components discover it
through three module-level hooks:

* :func:`active_metrics` — the shared :class:`MetricsRegistry` (or
  ``None``), looked up once at construction time so the per-event cost
  stays one ``is None`` check;
* :func:`register_trace` — components hand over their
  :class:`~repro.sim.trace.TraceBuffer` under a track name; the session
  enables it when event export was requested;
* :func:`attach_environment` — called from ``Environment.__init__`` so
  engine self-profiling can be switched on without the model layers
  knowing about it.

The active session lives in a **module global**, deliberately not a
``contextvars`` variable: fork-based ``SweepRunner`` workers inherit
module globals, which is exactly the propagation we want.  Inside a
worker (or on the serial path, for parity) :func:`nested_session` swaps
in a fresh session around one task; its :meth:`~TelemetrySession.
export_payload` result travels back to the parent, which merges it in
task order — so serial and parallel runs aggregate identically.

A session may additionally carry a live :class:`~repro.telemetry.
stream.TelemetryBus`.  While the bus has consumers (an SSE server, a
run recorder), every environment built under the session gets a
heartbeat :class:`~repro.telemetry.stream.StreamTap`, collected trace
events are published as they drain, and worker payloads stream at
absorb time — so an observer watches the run *while it executes*
instead of reading files afterwards.  With no consumers none of this
happens: no tap is scheduled and the run stays bit-identical to one
without a bus.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.sim.trace import TraceBuffer
from repro.telemetry.profiling import EngineProfiler
from repro.telemetry.registry import MetricsRegistry

__all__ = ["TelemetrySession", "telemetry_session", "nested_session",
           "active_session", "active_metrics", "active_bus",
           "register_trace", "attach_environment"]

#: Scrubbed trace record: (track, time, point, subject, detail).
EventTuple = Tuple[str, float, str, Any, Dict[str, Any]]

_PRIMITIVES = (bool, int, float, str, type(None))

_ACTIVE: Optional["TelemetrySession"] = None


def _scrub(value: Any) -> Any:
    """JSON-/pickle-safe stand-in for a traced value.

    Model objects (connections, sk_buffs, hosts) are reduced to their
    ``name``/``ident`` or type name: trace payloads cross process
    boundaries and must not drag generators along.
    """
    if isinstance(value, _PRIMITIVES):
        return value
    for attr in ("name", "ident"):
        label = getattr(value, attr, None)
        if isinstance(label, _PRIMITIVES) and label is not None:
            return label
    return type(value).__name__


class TelemetrySession:
    """Collects metrics, trace events and engine profiles for one run."""

    def __init__(self, metrics: bool = True, trace: bool = False,
                 profile: bool = False, bus: Optional[Any] = None):
        self.metrics_enabled = metrics
        self.trace_enabled = trace
        self.profile_enabled = profile
        self.registry = MetricsRegistry()
        self.profile: Optional[EngineProfiler] = (
            EngineProfiler() if profile else None)
        self.bus = bus
        self.events: List[EventTuple] = []
        self._tracks: List[Tuple[str, TraceBuffer]] = []
        self._track_names: Dict[str, int] = {}
        self.trace_dropped: Dict[str, int] = {}
        self._streamed = 0  # events already published onto the bus
        self._taps: List[Any] = []

    # -- component hooks ----------------------------------------------------
    def add_track(self, name: str, buffer: TraceBuffer) -> str:
        """Adopt a component's trace buffer under ``name``.

        Duplicate names get a ``#2``, ``#3``... suffix so repeated
        topologies in one session keep distinct tracks.  The buffer is
        switched on only when the session wants events.
        """
        count = self._track_names.get(name, 0) + 1
        self._track_names[name] = count
        track = name if count == 1 else f"{name}#{count}"
        self._tracks.append((track, buffer))
        if self.trace_enabled:
            buffer.enabled = True
        return track

    # -- collection ----------------------------------------------------------
    def collect_local(self) -> None:
        """Drain adopted trace buffers into ``self.events`` (idempotent).

        Ring overruns are folded into the cumulative per-track
        ``trace_dropped`` tally (the buffers reset their own counter on
        ``clear``) and surfaced live through the
        ``telemetry.trace_dropped`` gauge, so a streaming client sees
        backpressure as it happens instead of in a post-mortem export.
        """
        for track, buffer in self._tracks:
            for ev in buffer:
                self.events.append((
                    track, ev.time, ev.point, _scrub(ev.subject),
                    {k: _scrub(v) for k, v in ev.detail.items()}))
            if buffer.dropped:
                self._count_dropped(track, buffer.dropped)
            buffer.clear()
        self._stream_new_events()

    def _count_dropped(self, track: str, dropped: int) -> None:
        total = self.trace_dropped.get(track, 0) + dropped
        self.trace_dropped[track] = total
        if self.metrics_enabled:
            self.registry.gauge("telemetry.trace_dropped",
                                track=track).set(total)

    def _stream_new_events(self) -> None:
        """Publish events not yet seen by the bus (no-op without one).

        ``_streamed`` is a prefix index into ``self.events``; it only
        advances when the bus actually accepts events (consumers
        attached, same process), so a forked worker's payload arrives
        with ``streamed == 0`` and the parent publishes on its behalf.
        """
        bus = self.bus
        if bus is None or not bus.streaming:
            return
        events = self.events
        for track, time, point, subject, detail in events[self._streamed:]:
            bus.publish_trace(track, time, point, subject, detail)
        self._streamed = len(events)

    def export_payload(self) -> Dict[str, Any]:
        """Picklable dump of everything this session collected."""
        self.collect_local()
        return {
            "events": self.events,
            "metrics": self.registry.snapshot() if self.metrics_enabled else [],
            "profile": self.profile.snapshot() if self.profile else None,
            "trace_dropped": dict(self.trace_dropped),
            "streamed": self._streamed,
        }

    def absorb(self, payload: Dict[str, Any], prefix: str = "") -> None:
        """Merge a worker payload: events append (tracks prefixed),
        metrics merge by kind, profiles accumulate, trace-ring drop
        counts add under their prefixed tracks.

        Events the producing session could not stream itself (it ran in
        a forked worker, where the bus no-ops) are published now, so
        parallel sweeps stay observable live at task granularity; the
        payload's ``streamed`` prefix count prevents double-publishing
        on the serial path, where the nested session already streamed
        its events as they happened.
        """
        self._stream_new_events()  # parent backlog first, in order
        bus = self.bus
        live = bus is not None and bus.streaming
        already = payload.get("streamed", 0)
        for i, (track, time, point, subject, detail) in enumerate(
                payload["events"]):
            self.events.append((prefix + track, time, point, subject, detail))
            if live and i >= already:
                bus.publish_trace(prefix + track, time, point, subject,
                                  detail)
        if live:
            self._streamed = len(self.events)
        if payload["metrics"]:
            # trace_dropped gauges are re-derived below under prefixed
            # tracks; merging the worker's unprefixed series would alias
            # every worker's count onto one label.
            metrics = [entry for entry in payload["metrics"]
                       if entry["name"] != "telemetry.trace_dropped"]
            if metrics:
                self.registry.merge_snapshot(metrics)
        if payload["profile"] is not None and self.profile is not None:
            self.profile.merge_snapshot(payload["profile"])
        for track, dropped in payload.get("trace_dropped", {}).items():
            if dropped:
                self._count_dropped(prefix + track, dropped)

    # -- streaming ----------------------------------------------------------
    def attach_tap(self, env: Any) -> None:
        """Schedule a heartbeat :class:`~repro.telemetry.stream.
        StreamTap` on ``env`` when the bus has consumers (no-op —
        and therefore bit-identity-preserving — otherwise)."""
        bus = self.bus
        if bus is None or not bus.streaming:
            return
        from repro.telemetry.stream import StreamTap
        self._taps.append(StreamTap(bus, self, env))

    def _finish_streaming(self) -> None:
        """Final flush at session teardown: one last tick per tap."""
        for tap in self._taps:
            tap.flush()
            tap.cancel()
        self._taps.clear()


# -- ambient lookup -------------------------------------------------------------
def active_session() -> Optional[TelemetrySession]:
    """The session currently collecting, or ``None``."""
    return _ACTIVE


def active_metrics() -> Optional[MetricsRegistry]:
    """The active session's registry when metrics are on, else ``None``.

    Components call this once in ``__init__`` and keep the result; the
    steady-state cost of disabled metrics is one ``is None`` test.
    """
    session = _ACTIVE
    if session is not None and session.metrics_enabled:
        return session.registry
    return None


def active_bus() -> Optional[Any]:
    """The active session's :class:`~repro.telemetry.stream.
    TelemetryBus`, or ``None``.  Rare-event publishers (the chaos
    injector, run-lifecycle markers) look the bus up through this hook;
    per-event cost without one is a single ``is None`` test.
    """
    session = _ACTIVE
    return session.bus if session is not None else None


def register_trace(name: str, buffer: TraceBuffer) -> None:
    """Offer a component's trace buffer to the active session (no-op
    when none is active)."""
    session = _ACTIVE
    if session is not None:
        session.add_track(name, buffer)


def attach_environment(env: Any) -> None:
    """Hook called by ``Environment.__init__``: enables engine
    self-profiling and schedules the streaming heartbeat tap when the
    active session asked for either."""
    session = _ACTIVE
    if session is None:
        return
    if session.profile is not None:
        env.enable_profiling(session.profile)
    if session.bus is not None:
        session.attach_tap(env)


# -- activation ----------------------------------------------------------------
@contextlib.contextmanager
def telemetry_session(metrics: bool = True, trace: bool = False,
                      profile: bool = False, bus: Optional[Any] = None
                      ) -> Iterator[TelemetrySession]:
    """Activate a fresh top-level session for the duration of the block.

    ``bus`` attaches a :class:`~repro.telemetry.stream.TelemetryBus`
    for live streaming (see docs/OBSERVABILITY.md, "Live streaming &
    replay")."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise MeasurementError("a telemetry session is already active; "
                               "use nested_session() inside workers")
    session = TelemetrySession(metrics=metrics, trace=trace, profile=profile,
                               bus=bus)
    _ACTIVE = session
    try:
        yield session
    finally:
        session.collect_local()
        session._finish_streaming()
        _ACTIVE = None


@contextlib.contextmanager
def nested_session(metrics: bool = True, trace: bool = False,
                   profile: bool = False) -> Iterator[TelemetrySession]:
    """Swap in a fresh session, restoring the previous one afterwards.

    Used around a single sweep task — in a forked worker (which
    inherited the parent's session object through the fork) and on the
    serial path alike, so both aggregate through the same code.  The
    nested session inherits the enclosing session's bus (if any): on
    the serial path that keeps each sweep point streaming live, and in
    a forked worker the inherited bus no-ops by pid, so nothing is
    double-published.
    """
    global _ACTIVE
    previous = _ACTIVE
    session = TelemetrySession(metrics=metrics, trace=trace, profile=profile,
                               bus=previous.bus if previous else None)
    _ACTIVE = session
    try:
        yield session
    finally:
        session.collect_local()
        session._finish_streaming()
        _ACTIVE = previous
