"""Ambient telemetry session: one switchboard for a whole run.

A :class:`TelemetrySession` is activated with :func:`telemetry_session`
around an experiment.  While active, instrumented components discover it
through three module-level hooks:

* :func:`active_metrics` — the shared :class:`MetricsRegistry` (or
  ``None``), looked up once at construction time so the per-event cost
  stays one ``is None`` check;
* :func:`register_trace` — components hand over their
  :class:`~repro.sim.trace.TraceBuffer` under a track name; the session
  enables it when event export was requested;
* :func:`attach_environment` — called from ``Environment.__init__`` so
  engine self-profiling can be switched on without the model layers
  knowing about it.

The active session lives in a **module global**, deliberately not a
``contextvars`` variable: fork-based ``SweepRunner`` workers inherit
module globals, which is exactly the propagation we want.  Inside a
worker (or on the serial path, for parity) :func:`nested_session` swaps
in a fresh session around one task; its :meth:`~TelemetrySession.
export_payload` result travels back to the parent, which merges it in
task order — so serial and parallel runs aggregate identically.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.sim.trace import TraceBuffer
from repro.telemetry.profiling import EngineProfiler
from repro.telemetry.registry import MetricsRegistry

__all__ = ["TelemetrySession", "telemetry_session", "nested_session",
           "active_session", "active_metrics", "register_trace",
           "attach_environment"]

#: Scrubbed trace record: (track, time, point, subject, detail).
EventTuple = Tuple[str, float, str, Any, Dict[str, Any]]

_PRIMITIVES = (bool, int, float, str, type(None))

_ACTIVE: Optional["TelemetrySession"] = None


def _scrub(value: Any) -> Any:
    """JSON-/pickle-safe stand-in for a traced value.

    Model objects (connections, sk_buffs, hosts) are reduced to their
    ``name``/``ident`` or type name: trace payloads cross process
    boundaries and must not drag generators along.
    """
    if isinstance(value, _PRIMITIVES):
        return value
    for attr in ("name", "ident"):
        label = getattr(value, attr, None)
        if isinstance(label, _PRIMITIVES) and label is not None:
            return label
    return type(value).__name__


class TelemetrySession:
    """Collects metrics, trace events and engine profiles for one run."""

    def __init__(self, metrics: bool = True, trace: bool = False,
                 profile: bool = False):
        self.metrics_enabled = metrics
        self.trace_enabled = trace
        self.profile_enabled = profile
        self.registry = MetricsRegistry()
        self.profile: Optional[EngineProfiler] = (
            EngineProfiler() if profile else None)
        self.events: List[EventTuple] = []
        self._tracks: List[Tuple[str, TraceBuffer]] = []
        self._track_names: Dict[str, int] = {}

    # -- component hooks ----------------------------------------------------
    def add_track(self, name: str, buffer: TraceBuffer) -> str:
        """Adopt a component's trace buffer under ``name``.

        Duplicate names get a ``#2``, ``#3``... suffix so repeated
        topologies in one session keep distinct tracks.  The buffer is
        switched on only when the session wants events.
        """
        count = self._track_names.get(name, 0) + 1
        self._track_names[name] = count
        track = name if count == 1 else f"{name}#{count}"
        self._tracks.append((track, buffer))
        if self.trace_enabled:
            buffer.enabled = True
        return track

    # -- collection ----------------------------------------------------------
    def collect_local(self) -> None:
        """Drain adopted trace buffers into ``self.events`` (idempotent)."""
        for track, buffer in self._tracks:
            for ev in buffer:
                self.events.append((
                    track, ev.time, ev.point, _scrub(ev.subject),
                    {k: _scrub(v) for k, v in ev.detail.items()}))
            buffer.clear()

    def export_payload(self) -> Dict[str, Any]:
        """Picklable dump of everything this session collected."""
        self.collect_local()
        return {
            "events": self.events,
            "metrics": self.registry.snapshot() if self.metrics_enabled else [],
            "profile": self.profile.snapshot() if self.profile else None,
        }

    def absorb(self, payload: Dict[str, Any], prefix: str = "") -> None:
        """Merge a worker payload: events append (tracks prefixed),
        metrics merge by kind, profiles accumulate."""
        for track, time, point, subject, detail in payload["events"]:
            self.events.append((prefix + track, time, point, subject, detail))
        if payload["metrics"]:
            self.registry.merge_snapshot(payload["metrics"])
        if payload["profile"] is not None and self.profile is not None:
            self.profile.merge_snapshot(payload["profile"])


# -- ambient lookup -------------------------------------------------------------
def active_session() -> Optional[TelemetrySession]:
    """The session currently collecting, or ``None``."""
    return _ACTIVE


def active_metrics() -> Optional[MetricsRegistry]:
    """The active session's registry when metrics are on, else ``None``.

    Components call this once in ``__init__`` and keep the result; the
    steady-state cost of disabled metrics is one ``is None`` test.
    """
    session = _ACTIVE
    if session is not None and session.metrics_enabled:
        return session.registry
    return None


def register_trace(name: str, buffer: TraceBuffer) -> None:
    """Offer a component's trace buffer to the active session (no-op
    when none is active)."""
    session = _ACTIVE
    if session is not None:
        session.add_track(name, buffer)


def attach_environment(env: Any) -> None:
    """Hook called by ``Environment.__init__``: enables engine
    self-profiling when the active session asked for it."""
    session = _ACTIVE
    if session is not None and session.profile is not None:
        env.enable_profiling(session.profile)


# -- activation ----------------------------------------------------------------
@contextlib.contextmanager
def telemetry_session(metrics: bool = True, trace: bool = False,
                      profile: bool = False
                      ) -> Iterator[TelemetrySession]:
    """Activate a fresh top-level session for the duration of the block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise MeasurementError("a telemetry session is already active; "
                               "use nested_session() inside workers")
    session = TelemetrySession(metrics=metrics, trace=trace, profile=profile)
    _ACTIVE = session
    try:
        yield session
    finally:
        session.collect_local()
        _ACTIVE = None


@contextlib.contextmanager
def nested_session(metrics: bool = True, trace: bool = False,
                   profile: bool = False) -> Iterator[TelemetrySession]:
    """Swap in a fresh session, restoring the previous one afterwards.

    Used around a single sweep task — in a forked worker (which
    inherited the parent's session object through the fork) and on the
    serial path alike, so both aggregate through the same code.
    """
    global _ACTIVE
    previous = _ACTIVE
    session = TelemetrySession(metrics=metrics, trace=trace, profile=profile)
    _ACTIVE = session
    try:
        yield session
    finally:
        session.collect_local()
        _ACTIVE = previous
