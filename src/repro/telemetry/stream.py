"""Live telemetry streaming: the event bus, heartbeat tap and recorder.

The paper's whole methodology is *watching the system while it runs* —
tcptrace timelines, interrupt-coalescing sweeps, the §5 loss-incident
analysis.  The file exporters (PR 2) only tell that story after the
fact; this module makes the same event flow observable in flight:

* :class:`TelemetryBus` — an in-process publish/subscribe switchboard.
  Metric samples, trace events, chaos fire/recover notifications and
  engine-progress heartbeats are all published as plain JSON-safe
  dicts.  Each subscriber owns a **bounded ring** (``deque(maxlen)``)
  with an exact per-subscriber ``dropped`` counter, so a slow consumer
  backpressures by shedding *its own* oldest events, never by stalling
  the simulation.  With no subscriber attached ``publish`` is a single
  truthiness test and the heartbeat tap is never scheduled — runs
  without an observer stay bit-identical to runs without a bus.
* :class:`StreamTap` — the per-environment heartbeat.  Attached from
  :func:`repro.telemetry.session.attach_environment` through
  ``Environment.every()``, each tick drains the session's trace
  buffers onto the bus, publishes the *changed* metric series since the
  previous tick (see :func:`repro.telemetry.registry.diff_snapshots`)
  and a heartbeat with engine progress counters.
* :class:`RunRecorder` — a lossless synchronous subscriber persisting
  the stream into a versioned ``.reprorun`` bundle: a directory with a
  ``manifest.json`` plus gzipped JSONL segments.  :func:`load_bundle`
  reads one back and can re-drive any consumer (:meth:`RunBundle.
  replay`) for deterministic, bit-identical replay — the interchange
  format the future job server will stream from.

Threading model: the simulation publishes from its own (usually main)
thread; ``deque.append`` / ``popleft`` are atomic, so a consumer thread
(the SSE server) may drain a subscription ring without locks.  Fork
safety: both the bus and the recorder remember their creating pid and
turn into no-ops inside forked sweep workers — the parent re-publishes
worker payloads when it absorbs them, so nothing is double-counted and
no gzip stream is ever written from two processes.
"""

from __future__ import annotations

import gzip
import json
import os
import pathlib
import shutil
from collections import deque
from typing import (Any, Callable, Deque, Dict, Iterator, List, Optional,
                    Union)

from repro.errors import MeasurementError
from repro.telemetry.registry import diff_snapshots

__all__ = ["TelemetryBus", "Subscription", "StreamTap", "RunRecorder",
           "RunBundle", "load_bundle", "BUNDLE_FORMAT", "STREAM_TICK_ENV",
           "DEFAULT_STREAM_TICK_S"]

PathLike = Union[str, pathlib.Path]

#: Bundle format tag written into every manifest (bump on layout change).
BUNDLE_FORMAT = "reprorun-v1"

#: Environment variable overriding the heartbeat cadence (sim seconds).
STREAM_TICK_ENV = "REPRO_STREAM_TICK"

#: Default heartbeat interval in *simulation* seconds.  The reference
#: workloads simulate milliseconds-to-seconds of wire time, so 1 ms
#: yields tens-to-thousands of samples without drowning the stream.
DEFAULT_STREAM_TICK_S = 1e-3

#: Default per-subscriber ring bound (events pending, not yet drained).
DEFAULT_RING = 65_536


def stream_tick_s() -> float:
    """The configured heartbeat interval (``REPRO_STREAM_TICK`` or the
    default), validated to be positive."""
    from repro.core.knobs import env_raw  # lazy: core imports telemetry
    raw = env_raw(STREAM_TICK_ENV)
    if not raw:
        return DEFAULT_STREAM_TICK_S
    try:
        tick = float(raw)
    except ValueError:
        raise MeasurementError(
            f"{STREAM_TICK_ENV} must be a number, got {raw!r}")
    if tick <= 0:
        raise MeasurementError(
            f"{STREAM_TICK_ENV} must be positive, got {raw!r}")
    return tick


class Subscription:
    """One consumer's bounded view of the bus.

    Events accumulate in a ring (``deque(maxlen=max_pending)``); when
    the consumer falls behind, the oldest pending events are shed and
    ``dropped`` counts them exactly — the same overrun discipline as
    :class:`~repro.sim.trace.TraceBuffer`.  ``drain()`` empties the
    ring; it is safe to call from a different thread than the
    publisher's.
    """

    __slots__ = ("name", "max_pending", "dropped", "delivered", "_ring",
                 "_bus")

    def __init__(self, bus: "TelemetryBus", name: str, max_pending: int):
        if max_pending < 1:
            raise MeasurementError("max_pending must be >= 1")
        self.name = name
        self.max_pending = max_pending
        self.dropped = 0
        self.delivered = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=max_pending)
        self._bus = bus

    def _push(self, event: Dict[str, Any]) -> None:
        ring = self._ring
        if len(ring) == self.max_pending:
            self.dropped += 1  # deque(maxlen) evicts the oldest
        ring.append(event)
        self.delivered += 1

    def pending(self) -> int:
        """Events queued but not yet drained."""
        return len(self._ring)

    def drain(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Remove and return up to ``limit`` pending events (all when
        ``None``), oldest first."""
        ring = self._ring
        out: List[Dict[str, Any]] = []
        try:
            while limit is None or len(out) < limit:
                out.append(ring.popleft())
        except IndexError:
            pass
        return out

    def close(self) -> None:
        """Detach from the bus; pending events stay drainable."""
        self._bus._detach(self)


class TelemetryBus:
    """In-process pub/sub switchboard for live run telemetry.

    Publishing stamps each event with a monotonically increasing
    ``seq`` (the replay identity key) and fans it out to every ring
    subscriber plus every synchronous sink.  **With no consumers the
    publish path is one truthiness test** and returns ``None`` without
    assigning a sequence number, so an idle bus leaves no trace in the
    event flow.
    """

    def __init__(self):
        self._subs: List[Subscription] = []
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []
        self._seq = 0
        self.published = 0
        self._pid = os.getpid()

    # -- consumers ----------------------------------------------------------
    @property
    def has_consumers(self) -> bool:
        """Whether anything would observe a published event."""
        return bool(self._subs or self._sinks)

    @property
    def streaming(self) -> bool:
        """Whether a publish from *this* process would be observed:
        consumers attached and not inside a forked worker."""
        return bool(self._subs or self._sinks) and os.getpid() == self._pid

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently published event."""
        return self._seq

    def subscribe(self, name: str = "",
                  max_pending: int = DEFAULT_RING) -> Subscription:
        """Attach a ring subscriber (drained by polling)."""
        sub = Subscription(self, name or f"sub{len(self._subs)}",
                           max_pending)
        self._subs.append(sub)
        return sub

    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Attach a synchronous, lossless consumer (e.g. a recorder).

        Sinks run inline on the publishing thread; they must be fast
        and must not publish back into the bus.
        """
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Detach a previously added sink (no-op when absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def _detach(self, sub: Subscription) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    # -- publishing ---------------------------------------------------------
    def publish(self, kind: str,
                payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Fan ``payload`` out as one ``kind`` event; returns the stamped
        event, or ``None`` when nobody is listening (zero-cost path).

        ``payload`` must be JSON-safe; the bus adds ``seq`` and
        ``kind`` keys (shallow-copying, so callers may reuse dicts).
        """
        if not (self._subs or self._sinks):
            return None
        if os.getpid() != self._pid:
            # Forked sweep worker: its events travel back in the task
            # payload and are re-published by the parent's absorb().
            return None
        self._seq += 1
        event = {"seq": self._seq, "kind": kind}
        event.update(payload)
        self.published += 1
        for sub in self._subs:
            sub._push(event)
        for sink in self._sinks:
            sink(event)
        return event

    # -- convenience publishers --------------------------------------------
    def publish_trace(self, track: str, time: float, point: str,
                      subject: Any, detail: Dict[str, Any]) -> None:
        """Publish one scrubbed trace event (see session.collect_local)."""
        self.publish("trace", {"track": track, "time": time, "point": point,
                               "subject": subject, "detail": detail})

    def publish_meta(self, event: str, **fields: Any) -> None:
        """Publish a run-lifecycle marker (run_start, run_end...)."""
        payload = {"event": event}
        payload.update(fields)
        self.publish("meta", payload)


class StreamTap:
    """Per-environment heartbeat pump feeding a :class:`TelemetryBus`.

    Created by :func:`repro.telemetry.session.attach_environment` when
    the active session carries a bus **with consumers**; never created
    otherwise, so observer-less runs schedule no extra events.  Each
    tick (one :class:`~repro.sim.engine.PeriodicCall`):

    1. drains the session's adopted trace buffers (``collect_local`` —
       which itself streams the freshly collected events, see
       :mod:`repro.telemetry.session`),
    2. publishes the metric series that changed since the last tick,
    3. publishes an engine heartbeat (sim time, events scheduled,
       pending count, scheduler backend).
    """

    __slots__ = ("bus", "session", "env", "interval_s", "_last_metrics",
                 "_periodic", "ticks")

    def __init__(self, bus: TelemetryBus, session: Any, env: Any,
                 interval_s: Optional[float] = None):
        self.bus = bus
        self.session = session
        self.env = env
        self.interval_s = interval_s or stream_tick_s()
        self._last_metrics: List[Dict[str, Any]] = []
        self.ticks = 0
        # while_pending: the heartbeat must never be the event keeping
        # a drain-mode run() alive (see PeriodicCall).
        self._periodic = env.every(self.interval_s, self.tick,
                                   while_pending=True)

    def tick(self) -> None:
        """One heartbeat: trace drain + metric delta + progress."""
        bus = self.bus
        if not bus.streaming:
            return
        self.ticks += 1
        session = self.session
        session.collect_local()  # streams fresh trace events itself
        env = self.env
        now = env.now
        if session.metrics_enabled:
            snapshot = session.registry.snapshot()
            changed = diff_snapshots(self._last_metrics, snapshot)
            if changed:
                bus.publish("metrics", {"time": now, "changed": changed})
                self._last_metrics = snapshot
        bus.publish("heartbeat", {
            "time": now,
            "events_scheduled": env.events_scheduled,
            "pending": env.pending_count(),
            "scheduler": env.scheduler,
        })

    def flush(self) -> None:
        """Publish any final state (called at session teardown)."""
        self.tick()

    def cancel(self) -> None:
        """Stop the periodic heartbeat."""
        self._periodic.cancel()


# -- run recording ------------------------------------------------------------
class RunRecorder:
    """Persists a bus stream into a ``.reprorun`` bundle directory.

    The bundle is a directory (conventionally named ``*.reprorun``)
    holding ``manifest.json`` plus numbered ``segment-NNNNN.jsonl.gz``
    files, each at most ``segment_events`` events of JSONL (sorted
    keys, one event per line) — bounded segments keep any one file
    cheap to load and let a streaming job server ship them
    incrementally.  The recorder subscribes synchronously (lossless;
    ``dropped`` is structurally zero and recorded as such) and is
    fork-safe: a forked sweep worker inherits the object but its
    ``record`` calls no-op, so segments are only ever written by the
    creating process.
    """

    def __init__(self, bus: TelemetryBus, path: PathLike,
                 segment_events: int = 100_000,
                 overwrite: bool = False):
        if segment_events < 1:
            raise MeasurementError("segment_events must be >= 1")
        self.path = pathlib.Path(path)
        if self.path.exists():
            if not overwrite:
                raise MeasurementError(
                    f"bundle path exists: {self.path} (pass overwrite=True)")
            shutil.rmtree(self.path)
        self.path.mkdir(parents=True)
        self.bus = bus
        self.segment_events = segment_events
        self.event_count = 0
        self.segments: List[Dict[str, Any]] = []
        self.meta: Dict[str, Any] = {}
        self._pid = os.getpid()
        self._fh: Optional[Any] = None
        self._segment_count = 0
        self._first_seq: Optional[int] = None
        self._last_seq: Optional[int] = None
        self._closed = False
        bus.add_sink(self.record)

    # -- sink ---------------------------------------------------------------
    def record(self, event: Dict[str, Any]) -> None:
        """Append one event to the current segment (the bus sink)."""
        if self._closed or os.getpid() != self._pid:
            return
        if self._fh is None:
            self._open_segment()
        self._fh.write(json.dumps(event, sort_keys=True))
        self._fh.write("\n")
        seq = event.get("seq")
        if self._first_seq is None:
            self._first_seq = seq
        self._last_seq = seq
        self.event_count += 1
        self._segment_count += 1
        if self._segment_count >= self.segment_events:
            self._close_segment()

    # -- segment lifecycle --------------------------------------------------
    def _segment_name(self) -> str:
        return f"segment-{len(self.segments):05d}.jsonl.gz"

    def _open_segment(self) -> None:
        name = self._segment_name()
        self._fh = gzip.open(self.path / name, "wt", encoding="utf-8")
        self._segment_count = 0
        self._first_seq = None
        self._last_seq = None

    def _close_segment(self) -> None:
        if self._fh is None:
            return
        self._fh.close()
        self.segments.append({
            "file": self._segment_name(),
            "events": self._segment_count,
            "first_seq": self._first_seq,
            "last_seq": self._last_seq,
        })
        self._fh = None
        self._segment_count = 0

    def close(self) -> "RunBundle":
        """Finalize: flush the open segment, write the manifest, detach
        from the bus and return the loaded :class:`RunBundle`."""
        if not self._closed:
            self._close_segment()
            self._closed = True
            self.bus.remove_sink(self.record)
            manifest = {
                "format": BUNDLE_FORMAT,
                "event_count": self.event_count,
                "dropped": 0,  # synchronous sink: structurally lossless
                "segments": self.segments,
                "meta": self.meta,
            }
            (self.path / "manifest.json").write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
        return load_bundle(self.path)

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RunBundle:
    """A loaded ``.reprorun`` bundle: manifest + lazily-read events."""

    def __init__(self, path: pathlib.Path, manifest: Dict[str, Any]):
        self.path = path
        self.manifest = manifest

    @property
    def event_count(self) -> int:
        """Total recorded events per the manifest."""
        return self.manifest["event_count"]

    @property
    def meta(self) -> Dict[str, Any]:
        """Free-form run metadata captured at record time."""
        return self.manifest.get("meta", {})

    def iter_events(self) -> Iterator[Dict[str, Any]]:
        """Yield every recorded event in original (seq) order."""
        for segment in self.manifest["segments"]:
            seg_path = self.path / segment["file"]
            with gzip.open(seg_path, "rt", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    def events(self) -> List[Dict[str, Any]]:
        """All recorded events as a list."""
        return list(self.iter_events())

    def replay(self, consumer: Callable[[Dict[str, Any]], None]) -> int:
        """Re-drive ``consumer`` with every event in order; returns the
        count delivered.  Replaying the same bundle into two consumers
        yields bit-identical sequences — the determinism contract."""
        count = 0
        for event in self.iter_events():
            consumer(event)
            count += 1
        return count

    def replay_onto(self, bus: TelemetryBus) -> int:
        """Republish the recorded stream onto a live bus (events keep
        their recorded payloads; the bus re-stamps ``seq``)."""
        count = 0
        for event in self.iter_events():
            payload = {k: v for k, v in event.items()
                       if k not in ("seq", "kind")}
            bus.publish(event["kind"], payload)
            count += 1
        return count

    def summary(self) -> Dict[str, Any]:
        """Counts by event kind plus chaos/experiment highlights —
        the cheap integrity view (`python -m repro --replay` prints it).
        """
        kinds: Dict[str, int] = {}
        points: Dict[str, int] = {}
        chaos: List[Dict[str, Any]] = []
        experiments: List[str] = []
        first_time: Optional[float] = None
        last_time: Optional[float] = None
        for event in self.iter_events():
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
            t = event.get("time")
            if isinstance(t, (int, float)):
                if first_time is None:
                    first_time = t
                last_time = t
            if event["kind"] == "trace":
                point = event.get("point", "?")
                points[point] = points.get(point, 0) + 1
            elif event["kind"] == "chaos":
                chaos.append(event)
            elif (event["kind"] == "meta"
                    and event.get("event") == "run_start"
                    and event.get("experiment")):
                experiments.append(event["experiment"])
        return {
            "format": self.manifest["format"],
            "event_count": self.event_count,
            "kinds": kinds,
            "trace_points": points,
            "chaos_events": len(chaos),
            "experiments": experiments,
            "first_time": first_time,
            "last_time": last_time,
        }


def load_bundle(path: PathLike) -> RunBundle:
    """Load a ``.reprorun`` bundle written by :class:`RunRecorder`.

    Validates the manifest format tag and that every listed segment
    file exists, so a truncated copy fails loudly instead of silently
    replaying a prefix.
    """
    path = pathlib.Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise MeasurementError(f"not a .reprorun bundle: {path} "
                               f"(no manifest.json)")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    fmt = manifest.get("format")
    if fmt != BUNDLE_FORMAT:
        raise MeasurementError(
            f"unsupported bundle format {fmt!r} (expected {BUNDLE_FORMAT!r})")
    for segment in manifest.get("segments", ()):
        if not (path / segment["file"]).is_file():
            raise MeasurementError(
                f"bundle {path} is missing segment {segment['file']!r}")
    return RunBundle(path, manifest)
