"""Catalog of named instrumentation points.

Every ``TraceBuffer.post`` call site in the simulator uses one of the
names below.  The catalog is the contract between the instrumented
layers and the exporters: tests assert that every point posted during a
run is registered here, and :mod:`docs/OBSERVABILITY.md` renders this
table as the user-facing reference.

Layer prefixes mirror the source tree: ``pcix``/``mch``/``nic``/``irq``
(hw), ``skbuff``/``copy``/``host`` (oskernel boundary), ``tcp`` (tcp),
``switch``/``wan``/``pos`` (net), ``chaos`` (fault injection),
``cache`` (result cache), ``pool`` (persistent worker pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["InstrumentationPoint", "CATALOG", "layer_of", "LAYER_TITLES",
           "catalog_by_layer", "render_catalog_markdown"]


@dataclass(frozen=True)
class InstrumentationPoint:
    """One named trace point: where it fires and what it means."""

    name: str
    layer: str
    description: str


_POINTS: Tuple[Tuple[str, str, str], ...] = (
    # -- hardware: I/O bus ----------------------------------------------------
    ("pcix.dma", "hw",
     "PCI-X DMA transfer completed (bytes, bursts, MMRBC in effect)"),
    ("mch.dma", "hw",
     "Memory-controller-hub (CSA) DMA transfer completed"),
    # -- hardware: NIC tx -----------------------------------------------------
    ("nic.tx.queue", "hw", "Frame accepted into the adapter tx queue"),
    ("nic.tx.drop", "hw", "Frame dropped at the full adapter tx queue"),
    ("nic.tx.wire", "hw", "Frame serialized onto the wire"),
    ("nic.tso.split", "hw",
     "TSO engine split an oversized send into wire-MTU frames"),
    ("nic.tx.train", "hw",
     "Transmit engine closed a segment train (frames DMA'd back-to-back "
     "as one burst; wire_frames counts TSO splits)"),
    ("nic.tx_train_frames", "hw",
     "Counter point: frames carried by closed transmit trains"),
    # -- simulation engine ----------------------------------------------------
    ("engine.calendar_resizes", "sim",
     "Counter point: calendar-queue bucket-width rebuilds in the event "
     "scheduler"),
    # -- hardware: NIC rx + interrupts ---------------------------------------
    ("nic.rx.frame", "hw", "Frame arrived from the wire into the rx ring"),
    ("nic.rx.drop", "hw", "Frame dropped at the full rx descriptor ring"),
    ("nic.rx.dma", "hw", "Rx frame DMA'd to host memory"),
    ("irq.coalesce.arm", "hw", "Interrupt moderation timer armed"),
    ("irq.coalesce.fire", "hw",
     "Coalesced interrupt fired (batch = frames per interrupt)"),
    # -- OS kernel boundary ---------------------------------------------------
    ("host.rx.dispatch", "oskernel",
     "Interrupt handler dispatched rx frames to the protocol layer"),
    ("skbuff.alloc", "oskernel", "sk_buff allocated from the buddy allocator"),
    ("skbuff.free", "oskernel", "sk_buff returned to the buddy allocator"),
    ("skbuff.wmem.charge", "oskernel",
     "Send-socket memory charged for a queued segment"),
    ("skbuff.rmem.charge", "oskernel",
     "Receive-socket memory charged for a buffered segment"),
    ("copy.tx", "oskernel", "User-to-kernel copy on the transmit path"),
    ("copy.rx", "oskernel", "Kernel-to-user copy on the receive path"),
    # -- TCP ------------------------------------------------------------------
    ("tcp.tx.write", "tcp", "Application write accepted by the sender"),
    ("tcp.tx.block", "tcp", "Application write blocked on send-buffer space"),
    ("tcp.tx.segment", "tcp", "Segment transmitted (seq, len)"),
    ("tcp.tx.retransmit", "tcp", "Segment retransmitted (RTO or fast rtx)"),
    ("tcp.cwnd.update", "tcp",
     "Congestion window changed (cwnd, ssthresh, phase)"),
    ("tcp.rto.fire", "tcp", "Retransmission timeout expired"),
    ("tcp.fastrtx", "tcp", "Fast retransmit triggered by duplicate ACKs"),
    ("tcp.rx.deliver", "tcp", "In-order data delivered to the application"),
    ("tcp.rx.ack", "tcp", "ACK emitted by the receiver"),
    ("tcp.rx.ooo", "tcp", "Out-of-order segment buffered"),
    ("tcp.rx.dup", "tcp", "Duplicate segment discarded"),
    ("tcp.delack.fire", "tcp", "Delayed-ACK timer fired"),
    # -- network --------------------------------------------------------------
    ("switch.enqueue", "net", "Frame queued on a switch output port"),
    ("switch.drop", "net", "Frame dropped at a full switch output queue"),
    ("switch.forward", "net", "Frame forwarded out of a switch port"),
    ("wan.enqueue", "net", "Packet queued at a WAN router"),
    ("wan.drop", "net", "Packet dropped at a full WAN router queue"),
    ("wan.forward", "net", "Packet forwarded by a WAN router"),
    ("pos.tx", "net", "Packet serialized onto a POS circuit"),
    # -- chaos engine ---------------------------------------------------------
    ("chaos.fault_armed", "chaos",
     "Fault plan entry resolved its targets at simulation start "
     "(matched = components wrapped)"),
    ("chaos.fault_fired", "chaos", "Fault window opened"),
    ("chaos.fault_recovered", "chaos",
     "Fault window closed; degraded state restored"),
    ("chaos.frame_drop", "chaos",
     "Frame destroyed by an open fault window (flap/loss/corruption/"
     "reset)"),
    ("chaos.frame_hold", "chaos",
     "Frame delayed by an open fault window (reorder/NIC stall)"),
    ("chaos.frame_dup", "chaos",
     "Stale copy of a frame delivered by a duplicate fault"),
    ("chaos.unmatched", "chaos",
     "Fault plan entry matched no component in this topology "
     "(armed as a no-op)"),
    # -- result cache ---------------------------------------------------------
    ("cache.hits", "cache",
     "Counter point: result-cache lookups answered from the hot tier or "
     "disk store"),
    ("cache.misses", "cache",
     "Counter point: result-cache lookups that fell through to "
     "recomputation"),
    ("cache.evictions", "cache",
     "Counter point: entries evicted to honour REPRO_CACHE_MAX_BYTES "
     "(least recently used first)"),
    ("cache.bytes", "cache",
     "Gauge point: on-disk footprint of the result cache after the last "
     "store or eviction"),
    # -- worker pool ----------------------------------------------------------
    ("pool.tasks_dispatched", "pool",
     "Counter point: sweep points dispatched to worker processes "
     "(cache hits never dispatch)"),
    ("pool.reuse", "pool",
     "Counter point: dispatches served by an already-warm persistent "
     "worker pool instead of spawning one"),
)

#: name -> :class:`InstrumentationPoint`, the authoritative catalog.
CATALOG: Dict[str, InstrumentationPoint] = {
    name: InstrumentationPoint(name, layer, desc)
    for name, layer, desc in _POINTS
}


def layer_of(point: str) -> str:
    """Layer of a (possibly uncataloged) point, by prefix heuristics."""
    entry = CATALOG.get(point)
    if entry is not None:
        return entry.layer
    return point.split(".", 1)[0]


#: Layer key -> user-facing section title, in documentation order.
LAYER_TITLES: Tuple[Tuple[str, str], ...] = (
    ("hw", "Hardware"),
    ("sim", "Simulation engine"),
    ("oskernel", "Kernel boundary"),
    ("tcp", "TCP"),
    ("net", "Network"),
    ("chaos", "Chaos engine"),
    ("cache", "Result cache"),
    ("pool", "Worker pool"),
)


def catalog_by_layer() -> Dict[str, List[InstrumentationPoint]]:
    """Catalog entries grouped by layer, preserving catalog order."""
    grouped: Dict[str, List[InstrumentationPoint]] = {
        layer: [] for layer, _ in LAYER_TITLES}
    for point in CATALOG.values():
        grouped.setdefault(point.layer, []).append(point)
    return grouped


def render_catalog_markdown() -> str:
    """The instrumentation-point reference as markdown tables.

    ``docs/OBSERVABILITY.md`` embeds exactly this text between its
    ``BEGIN/END GENERATED CATALOG`` markers; a unit test diffs the two,
    so the catalog and its documentation can never drift apart again.
    Multi-line descriptions collapse to one line for table cells.
    """
    grouped = catalog_by_layer()
    known = {layer for layer, _ in LAYER_TITLES}
    stray = sorted({p.layer for p in CATALOG.values()} - known)
    if stray:  # a new layer must be given a documented title first
        raise ValueError(f"layers missing from LAYER_TITLES: {stray}")
    sections = []
    for layer, title in LAYER_TITLES:
        points = grouped[layer]
        lines = [f"#### {title} ({len(points)})", "",
                 "| point | fires when |", "|---|---|"]
        for point in points:
            desc = " ".join(point.description.split())
            lines.append(f"| `{point.name}` | {desc} |")
        sections.append("\n".join(lines))
    return "\n\n".join(sections) + "\n"
