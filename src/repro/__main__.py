"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro --list
    python -m repro fig3 tab1 wan
    python -m repro all --full --jobs auto --out results/
    python -m repro --cache-stats
    python -m repro --clear-cache

Each named experiment prints the same rows/series the paper reports
(see the index in DESIGN.md) and optionally archives the text.
Independent simulation points fan out over ``--jobs`` worker processes
(default: ``REPRO_JOBS`` or serial; results are bit-identical either
way), and completed work is memoized under ``.repro-cache/`` so warm
reruns are near-instant (``--no-cache`` forces recomputation).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List

from repro.analysis.experiments import experiment_ids, run_experiment
from repro.cache import cache_stats, clear_cache
from repro.errors import ConfigError
from repro.sim.runner import resolve_jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the SC 2003 10GbE paper "
                    "from the simulator.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (or 'all'); see --list")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids and exit")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale averaging (slower)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to archive reports into")
    parser.add_argument("--jobs", "-j", default=None, metavar="N",
                        help="worker processes for independent simulation "
                             "points ('auto' = one per core; default: "
                             "$REPRO_JOBS or serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print result-cache statistics and exit")
    parser.add_argument("--clear-cache", action="store_true",
                        help="empty the result cache and exit")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in experiment_ids():
            print(name)
        return 0
    if args.cache_stats:
        stats = cache_stats()
        print(f"cache {stats.path}: {stats.entries} entries, "
              f"{stats.size_bytes / 1e6:.2f} MB "
              f"(this process: {stats.hits} hits / {stats.misses} misses)")
        return 0
    if args.clear_cache:
        removed = clear_cache()
        print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.jobs is not None:
        try:
            resolve_jobs(args.jobs)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    names = args.experiments
    if not names:
        build_parser().print_help()
        return 2
    if names == ["all"]:
        names = experiment_ids()
    unknown = [n for n in names if n not in experiment_ids()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"known: {', '.join(experiment_ids())}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.time()
        output = run_experiment(name, quick=not args.full, jobs=args.jobs,
                                cache=not args.no_cache)
        elapsed = time.time() - start
        banner = f"=== {name} ({elapsed:.1f}s) "
        print(banner + "=" * max(0, 72 - len(banner)))
        print(output.text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(output.text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
