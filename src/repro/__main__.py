"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro --list
    python -m repro fig3 tab1 wan
    python -m repro all --full --jobs auto --out results/
    python -m repro fig3 --trace out.json --metrics --profile
    python -m repro --cache-stats
    python -m repro --clear-cache

Each named experiment prints the same rows/series the paper reports
(see the index in DESIGN.md) and optionally archives the text.
Independent simulation points fan out over ``--jobs`` worker processes
(default: ``REPRO_JOBS`` or serial; results are bit-identical either
way) drawn from one persistent warm pool shared by every experiment in
the invocation (``REPRO_POOL_PERSIST=0`` reverts to a pool per sweep),
and completed work is memoized under ``.repro-cache/`` so warm reruns
are near-instant (``--no-cache`` forces recomputation; see
docs/CACHING.md for the store layout and sizing knobs).

Chaos (see docs/RESILIENCE.md): ``--chaos PLAN.json`` (or the
``REPRO_CHAOS`` environment variable) arms a declarative fault plan for
every experiment in the invocation; cache keys automatically include the
plan fingerprint, so chaotic results never alias clean ones.

Telemetry (see docs/OBSERVABILITY.md): ``--metrics`` appends the merged
metrics table to each report (identical at any ``--jobs``), ``--trace``
writes a Perfetto-loadable Chrome trace, ``--trace-jsonl`` a raw event
dump, ``--timeline`` per-connection tcptrace-style series, and
``--profile`` the engine's "where did the time go" table.  Any of these
flags disables the result cache for the run (cache hits produce no
telemetry).

Live streaming (docs/OBSERVABILITY.md, "Live streaming & replay"):
``--serve [HOST:PORT]`` starts the observer dashboard and streams the
run over SSE while it executes; ``--record RUN.reprorun`` persists the
same stream into a replayable bundle; ``--replay RUN.reprorun`` prints
a recorded bundle's summary, or serves it for scrubbing when combined
with ``--serve``.  Streaming implies metrics+trace collection and
bypasses the result cache (a cache hit would produce no stream).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List

from repro.analysis.experiments import experiment_ids, run_experiment
from repro.cache import cache_stats, clear_cache
from repro.errors import ConfigError
from repro.sim.runner import resolve_jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the SC 2003 10GbE paper "
                    "from the simulator.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (or 'all'); see --list")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids and exit")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale averaging (slower)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to archive reports into")
    parser.add_argument("--jobs", "-j", default=None, metavar="N",
                        help="worker processes for independent simulation "
                             "points ('auto' = one per core; default: "
                             "$REPRO_JOBS or serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--chaos", type=pathlib.Path, default=None,
                        metavar="PLAN.json",
                        help="arm a declarative fault plan (JSON; see "
                             "docs/RESILIENCE.md) for every experiment")
    parser.add_argument("--metrics", action="store_true",
                        help="append the merged metrics table to each "
                             "report")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        metavar="FILE",
                        help="write a Chrome trace_event JSON (open in "
                             "Perfetto / chrome://tracing)")
    parser.add_argument("--trace-jsonl", type=pathlib.Path, default=None,
                        metavar="FILE",
                        help="write the raw trace events as JSON lines")
    parser.add_argument("--timeline", type=pathlib.Path, default=None,
                        metavar="FILE",
                        help="write tcptrace-style per-connection "
                             "time-sequence/cwnd series as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="append the engine self-profile ('where did "
                             "the time go') to each report")
    parser.add_argument("--serve", nargs="?", const="127.0.0.1:0",
                        default=None, metavar="HOST:PORT",
                        help="serve the live observer dashboard (SSE) while "
                             "experiments run, or a recorded bundle with "
                             "--replay (default bind: 127.0.0.1, ephemeral "
                             "port)")
    parser.add_argument("--record", type=pathlib.Path, default=None,
                        metavar="RUN.reprorun",
                        help="record the telemetry stream into a replayable "
                             ".reprorun bundle directory")
    parser.add_argument("--replay", type=pathlib.Path, default=None,
                        metavar="RUN.reprorun",
                        help="load a recorded bundle: print its summary, or "
                             "serve it for scrubbing with --serve")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print result-cache statistics and exit")
    parser.add_argument("--clear-cache", action="store_true",
                        help="empty the result cache and exit")
    return parser


def _parse_serve(value: str):
    """``HOST:PORT``/``:PORT``/``PORT`` -> (host, port)."""
    host, _, port = value.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port or "0")
    except ValueError:
        raise ConfigError(f"--serve expects HOST:PORT, got {value!r}")


def _hold_serving(server) -> None:
    """Keep the observer up until Ctrl-C (interactive sessions, or
    ``REPRO_SERVE_HOLD=1``; non-tty runs fall through so scripted
    invocations terminate)."""
    from repro.core.knobs import env_raw
    hold = env_raw("REPRO_SERVE_HOLD")
    if hold is not None:
        want = hold not in ("0", "")
    else:
        want = sys.stdin.isatty()
    if not want:
        return
    print("observer serving — Ctrl-C to exit", file=sys.stderr)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass


def _replay_bundle(args, serve_addr) -> int:
    """``--replay``: print a bundle summary, or serve it for scrubbing."""
    from repro.telemetry import load_bundle
    try:
        bundle = load_bundle(args.replay)
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if serve_addr is None:
        s = bundle.summary()
        kinds = ", ".join(f"{k}:{n}" for k, n in sorted(s["kinds"].items()))
        print(f"bundle {args.replay} ({s['format']})")
        print(f"  events: {s['event_count']} ({kinds})")
        if s["experiments"]:
            print(f"  experiments: {', '.join(s['experiments'])}")
        print(f"  chaos events: {s['chaos_events']}")
        if s["first_time"] is not None:
            print(f"  sim time: {s['first_time']:.6f}s .. "
                  f"{s['last_time']:.6f}s")
        top = sorted(s["trace_points"].items(), key=lambda kv: -kv[1])[:8]
        for point, count in top:
            print(f"    {point:<24} {count}")
        return 0
    from repro.serve import ObserverServer
    server = ObserverServer(bundle=bundle, host=serve_addr[0],
                            port=serve_addr[1],
                            meta={"bundle": str(args.replay)})
    server.start()
    print(f"observer (replay): {server.url}", file=sys.stderr)
    _hold_serving(server)
    server.stop()
    return 0


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in experiment_ids():
            print(name)
        return 0
    if args.cache_stats:
        from repro.cache import SHARDS, cache_max_bytes
        stats = cache_stats()
        cap = cache_max_bytes()
        cap_note = (f", cap {cap / 1e6:.2f} MB" if cap is not None
                    else "")
        print(f"cache {stats.path}: {stats.entries} entries across "
              f"{SHARDS} shards, {stats.size_bytes / 1e6:.2f} MB{cap_note}")
        print(f"  this process: {stats.hits} hits "
              f"({stats.hot_hits} hot) / {stats.misses} misses, "
              f"{stats.stores} stores, {stats.evictions} evictions, "
              f"{stats.errors} errors")
        return 0
    if args.clear_cache:
        removed = clear_cache()
        print(f"cleared {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.jobs is not None:
        try:
            resolve_jobs(args.jobs)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        serve_addr = (_parse_serve(args.serve)
                      if args.serve is not None else None)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.replay is not None:
        return _replay_bundle(args, serve_addr)
    names = args.experiments
    if not names:
        build_parser().print_help()
        return 2
    if names == ["all"]:
        names = experiment_ids()
    unknown = [n for n in names if n not in experiment_ids()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"known: {', '.join(experiment_ids())}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    want_events = (args.trace is not None or args.trace_jsonl is not None
                   or args.timeline is not None)
    streaming = serve_addr is not None or args.record is not None
    telemetry_on = (want_events or args.metrics or args.profile
                    or streaming)
    if args.chaos is not None:
        from repro.chaos import FaultPlan, chaos_session
        try:
            plan = FaultPlan.load(args.chaos)
        except Exception as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        chaos_cm = chaos_session(plan)
    else:
        import contextlib
        chaos_cm = contextlib.nullcontext()
    all_events = []
    bus = recorder = server = None
    if streaming:
        from repro.telemetry import RunRecorder, TelemetryBus
        bus = TelemetryBus()
        if args.record is not None:
            try:
                recorder = RunRecorder(bus, args.record)
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if serve_addr is not None:
            from repro.serve import ObserverServer
            server = ObserverServer(bus=bus, host=serve_addr[0],
                                    port=serve_addr[1],
                                    meta={"experiments": " ".join(names)})
            server.start()
            print(f"observer: {server.url}", file=sys.stderr)
    try:
        with chaos_cm:
            rc = _run_experiments(args, names, telemetry_on, want_events,
                                  all_events, bus)
    finally:
        # The warm worker pool persists across the experiments above;
        # tear it down before the interpreter starts dying.
        from repro.sim.pool import shutdown_pool
        shutdown_pool()
        if recorder is not None:
            bundle = recorder.close()
            print(f"recorded {bundle.event_count} events into "
                  f"{args.record}", file=sys.stderr)
    if server is not None:
        _hold_serving(server)
        server.stop()
    return rc


def _run_experiments(args, names, telemetry_on, want_events,
                     all_events, bus=None) -> int:
    for name in names:
        start = time.time()
        if telemetry_on:
            from repro.telemetry import (format_metrics_table,
                                         telemetry_session)
            if bus is not None:
                bus.publish_meta("run_start", experiment=name)
            with telemetry_session(metrics=(args.metrics or want_events
                                            or bus is not None),
                                   trace=want_events or bus is not None,
                                   profile=args.profile,
                                   bus=bus) as session:
                output = run_experiment(name, quick=not args.full,
                                        jobs=args.jobs, cache=False)
            if bus is not None:
                bus.publish_meta("run_end", experiment=name,
                                 elapsed_s=time.time() - start)
            extra = []
            if args.metrics:
                extra.append(format_metrics_table(
                    session.registry, title=f"Metrics ({name})"))
            if args.profile and session.profile is not None:
                extra.append(session.profile.render_table())
            if extra:
                output.text = "\n\n".join([output.text] + extra)
            # Prefix tracks with the experiment id so multi-experiment
            # invocations stay distinguishable in one trace file.
            all_events.extend(
                (f"{name}/{track}", t, point, subject, detail)
                for track, t, point, subject, detail in session.events)
        else:
            output = run_experiment(name, quick=not args.full, jobs=args.jobs,
                                    cache=not args.no_cache)
        elapsed = time.time() - start
        banner = f"=== {name} ({elapsed:.1f}s) "
        print(banner + "=" * max(0, 72 - len(banner)))
        print(output.text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(output.text + "\n")
    if want_events:
        from repro.telemetry import (write_chrome_trace, write_jsonl,
                                     write_timeline)
        if args.trace is not None:
            n = write_chrome_trace(all_events, args.trace)
            print(f"wrote {n} trace records to {args.trace}")
        if args.trace_jsonl is not None:
            n = write_jsonl(all_events, args.trace_jsonl)
            print(f"wrote {n} events to {args.trace_jsonl}")
        if args.timeline is not None:
            n = write_timeline(all_events, args.timeline)
            print(f"wrote {n} connection timeline(s) to {args.timeline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
