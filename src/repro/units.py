"""Unit helpers and physical constants used throughout the simulator.

All simulator-internal quantities use SI base units:

* time      — seconds (float)
* data size — bytes (int where exact, float for rates/means)
* data rate — bits per second (``bit/s``)

The helpers below exist so call sites read like the paper does
(``Gbps(8.5)``, ``us(19)``, ``KB(256)``) instead of sprinkling powers of
ten around.  Following the paper's conventions:

* network rates use decimal prefixes (1 Gb/s = 1e9 bit/s), and
* memory/buffer sizes use binary prefixes (1 KB = 1024 bytes), which is
  how both Linux socket-buffer sysctls and the paper's "256-KB socket
  buffer" are specified.
"""

from __future__ import annotations

__all__ = [
    "Kbps",
    "Mbps",
    "Gbps",
    "bits_per_sec",
    "to_Gbps",
    "to_Mbps",
    "KB",
    "MB",
    "GB",
    "ns",
    "us",
    "ms",
    "seconds",
    "to_us",
    "to_ms",
    "BITS_PER_BYTE",
    "bytes_per_sec",
    "transfer_time",
]

BITS_PER_BYTE = 8


# --- data rates (bit/s) --------------------------------------------------

def Kbps(x: float) -> float:
    """Kilobits per second to bit/s (decimal prefix)."""
    return x * 1e3


def Mbps(x: float) -> float:
    """Megabits per second to bit/s (decimal prefix)."""
    return x * 1e6


def Gbps(x: float) -> float:
    """Gigabits per second to bit/s (decimal prefix)."""
    return x * 1e9


def bits_per_sec(x: float) -> float:
    """Identity helper for call sites that want to be explicit."""
    return float(x)


def to_Gbps(rate_bps: float) -> float:
    """bit/s to Gb/s."""
    return rate_bps / 1e9


def to_Mbps(rate_bps: float) -> float:
    """bit/s to Mb/s."""
    return rate_bps / 1e6


def bytes_per_sec(rate_bps: float) -> float:
    """Convert a bit/s rate to bytes/s."""
    return rate_bps / BITS_PER_BYTE


# --- data sizes (bytes) --------------------------------------------------

def KB(x: float) -> int:
    """Kibibytes to bytes (binary prefix, as used for socket buffers)."""
    return int(x * 1024)


def MB(x: float) -> int:
    """Mebibytes to bytes."""
    return int(x * 1024 * 1024)


def GB(x: float) -> int:
    """Gibibytes to bytes."""
    return int(x * 1024 * 1024 * 1024)


# --- times (seconds) -----------------------------------------------------

def ns(x: float) -> float:
    """Nanoseconds to seconds."""
    return x * 1e-9


def us(x: float) -> float:
    """Microseconds to seconds."""
    return x * 1e-6


def ms(x: float) -> float:
    """Milliseconds to seconds."""
    return x * 1e-3


def seconds(x: float) -> float:
    """Identity helper for symmetry with the other time units."""
    return float(x)


def to_us(t: float) -> float:
    """Seconds to microseconds."""
    return t * 1e6


def to_ms(t: float) -> float:
    """Seconds to milliseconds."""
    return t * 1e3


def transfer_time(nbytes: float, rate_bps: float) -> float:
    """Serialization time of ``nbytes`` at ``rate_bps``.

    Raises :class:`ValueError` for non-positive rates: a zero-rate link
    would silently stall the event loop otherwise.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    if nbytes < 0:
        raise ValueError(f"size must be non-negative, got {nbytes!r}")
    return (nbytes * BITS_PER_BYTE) / rate_bps
