"""Live run observer: a stdlib-only SSE/HTTP server over the bus.

:class:`ObserverServer` exposes a running simulation (or a recorded
``.reprorun`` bundle) to a browser:

* ``GET /`` — the single-file dashboard
  (``src/repro/serve/static/observer.html``): live goodput / cwnd /
  queue-depth panels plus a scrub-and-replay chaos timeline;
* ``GET /events`` — a Server-Sent-Events stream.  In **live** mode it
  subscribes a bounded ring to the :class:`~repro.telemetry.stream.
  TelemetryBus` and forwards events as they are published (each SSE
  message carries ``id: <seq>``); in **replay** mode it streams the
  recorded bundle once, then an ``event: end`` marker;
* ``GET /bundle`` — every recorded event as one JSON array (replay
  mode; drives the dashboard's scrubber);
* ``GET /meta`` — run metadata and stream counters as JSON;
* ``GET /healthz`` — liveness probe.

Threading model: the asyncio loop runs on a dedicated daemon thread so
the (synchronous) simulation keeps the main thread.  The only shared
state is the bus subscription rings, whose ``deque`` append/popleft
pairs are atomic — no locks cross the boundary.  Everything here is
standard library (``asyncio`` + ``json``); there is nothing to
install.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import threading
from typing import Any, Dict, Optional

from repro.errors import MeasurementError
from repro.telemetry.stream import RunBundle, TelemetryBus

__all__ = ["ObserverServer", "DASHBOARD_PATH"]

#: The single-file dashboard served at ``/``.
DASHBOARD_PATH = pathlib.Path(__file__).parent / "static" / "observer.html"

_SSE_HEADERS = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-store\r\n"
                b"Access-Control-Allow-Origin: *\r\n"
                b"Connection: close\r\n\r\n")


def _response(status: str, ctype: str, body: bytes) -> bytes:
    head = (f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Cache-Control: no-store\r\n"
            f"Access-Control-Allow-Origin: *\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def _json_response(obj: Any, status: str = "200 OK") -> bytes:
    return _response(status, "application/json",
                     json.dumps(obj, sort_keys=True).encode("utf-8"))


class ObserverServer:
    """Serves one run — live from a bus, or replayed from a bundle.

    Exactly one of ``bus`` / ``bundle`` selects the mode (passing both
    serves the live bus and the bundle's ``/bundle`` endpoint, which is
    how ``--serve --replay`` works).  ``port=0`` binds an ephemeral
    port; read :attr:`port` after :meth:`start` for the real one.
    Usable as a context manager.
    """

    def __init__(self, bus: Optional[TelemetryBus] = None,
                 bundle: Optional[RunBundle] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 meta: Optional[Dict[str, Any]] = None,
                 poll_s: float = 0.05, keepalive_s: float = 15.0):
        if bus is None and bundle is None:
            raise MeasurementError(
                "ObserverServer needs a bus (live) or a bundle (replay)")
        self.bus = bus
        self.bundle = bundle
        self.host = host
        self.port = port
        self.meta = dict(meta or {})
        self.poll_s = poll_s
        self.keepalive_s = keepalive_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False
        self._start_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    @property
    def mode(self) -> str:
        """``live`` when a bus is attached, else ``replay``."""
        return "live" if self.bus is not None else "replay"

    def start(self) -> "ObserverServer":
        """Bind and serve on a background daemon thread; returns self."""
        if self._thread is not None:
            raise MeasurementError("observer server already started")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._serve_thread, args=(ready,),
            name="repro-observer", daemon=True)
        self._thread.start()
        ready.wait(timeout=10.0)
        if self._start_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise MeasurementError(
                f"observer server failed to bind {self.host}:{self.port}: "
                f"{self._start_error}")
        if self._server is None:
            raise MeasurementError("observer server did not start in time")
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return
        self._stopping = True
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ObserverServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _serve_thread(self, ready: threading.Event) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port))
        except OSError as exc:
            self._start_error = exc
            ready.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(server.wait_closed())
            loop.close()

    # -- request handling ---------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    asyncio.LimitOverrunError, ConnectionError):
                return
            parts = head.split(b"\r\n", 1)[0].decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            path = target.split("?", 1)[0]
            if method != "GET":
                writer.write(_response("405 Method Not Allowed",
                                       "text/plain", b"GET only\n"))
            elif path in ("/", "/index.html"):
                writer.write(_response(
                    "200 OK", "text/html; charset=utf-8",
                    DASHBOARD_PATH.read_bytes()))
            elif path == "/healthz":
                writer.write(_response("200 OK", "text/plain", b"ok\n"))
            elif path == "/meta":
                writer.write(_json_response(self._meta_payload()))
            elif path == "/bundle":
                if self.bundle is None:
                    writer.write(_json_response(
                        {"error": "no bundle attached (live mode)"},
                        "404 Not Found"))
                else:
                    writer.write(_json_response(self.bundle.events()))
            elif path == "/events":
                await self._stream_events(writer)
                return  # _stream_events owns the connection teardown
            else:
                writer.write(_response("404 Not Found", "text/plain",
                                       b"not found\n"))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _meta_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"mode": self.mode, "meta": self.meta}
        if self.bus is not None:
            payload["last_seq"] = self.bus.last_seq
            payload["published"] = self.bus.published
        if self.bundle is not None:
            payload["bundle"] = {
                "path": str(self.bundle.path),
                "event_count": self.bundle.event_count,
                "meta": self.bundle.meta,
            }
        return payload

    # -- SSE ----------------------------------------------------------------
    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        writer.write(_SSE_HEADERS)
        await writer.drain()
        try:
            if self.bus is not None:
                await self._sse_live(writer)
            else:
                await self._sse_replay(writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    def _sse_frame(event: Dict[str, Any]) -> str:
        return (f"id: {event.get('seq', 0)}\n"
                f"data: {json.dumps(event, sort_keys=True)}\n\n")

    async def _sse_live(self, writer: asyncio.StreamWriter) -> None:
        assert self.bus is not None
        sub = self.bus.subscribe("sse")
        reported_drops = 0
        idle_s = 0.0
        try:
            while not self._stopping:
                batch = sub.drain(1000)
                if batch:
                    idle_s = 0.0
                    frames = [self._sse_frame(ev) for ev in batch]
                    if sub.dropped > reported_drops:
                        # The ring shed events while this client lagged;
                        # tell it exactly how many so it can resync.
                        frames.append(
                            "event: dropped\ndata: "
                            + json.dumps({"dropped": sub.dropped}) + "\n\n")
                        reported_drops = sub.dropped
                    writer.write("".join(frames).encode("utf-8"))
                    await writer.drain()
                else:
                    idle_s += self.poll_s
                    if idle_s >= self.keepalive_s:
                        idle_s = 0.0
                        writer.write(b": keepalive\n\n")
                        await writer.drain()
                    await asyncio.sleep(self.poll_s)
        finally:
            sub.close()

    async def _sse_replay(self, writer: asyncio.StreamWriter) -> None:
        assert self.bundle is not None
        pending = []
        for event in self.bundle.iter_events():
            pending.append(self._sse_frame(event))
            if len(pending) >= 500:
                writer.write("".join(pending).encode("utf-8"))
                pending.clear()
                await writer.drain()
        pending.append("event: end\ndata: {}\n\n")
        writer.write("".join(pending).encode("utf-8"))
        await writer.drain()
