"""Serving layer: the live/replay run observer.

``python -m repro --serve ...`` starts :class:`ObserverServer`; see
docs/OBSERVABILITY.md ("Live streaming & replay") for the quickstart.
"""

from repro.serve.observer import DASHBOARD_PATH, ObserverServer

__all__ = ["ObserverServer", "DASHBOARD_PATH"]
