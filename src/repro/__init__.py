"""repro — simulation-based reproduction of *Optimizing 10-Gigabit
Ethernet for Networks of Workstations, Clusters, and Grids* (SC 2003).

Quick start::

    from repro import Environment, TuningConfig, BackToBack, TcpConnection
    from repro.tools.nttcp import nttcp_run

    env = Environment()
    bb = BackToBack.create(env, TuningConfig.fully_tuned(8160))
    conn = TcpConnection(env, bb.a, bb.b)
    result = nttcp_run(env, conn, payload=8108, count=1024)
    print(f"{result.goodput_gbps:.2f} Gb/s")

or regenerate a paper artifact directly::

    from repro import run_experiment
    print(run_experiment("tab1").text)
"""

from repro.cache import ResultCache, cache_context, cache_stats, clear_cache
from repro.config import TuningConfig
from repro.errors import ReproError
from repro.sim.engine import Environment
from repro.sim.runner import SweepRunner, job_context
from repro.hw.host import Host
from repro.hw.presets import (
    GBE_HOST,
    HostSpec,
    INTEL_E7505,
    ITANIUM2,
    PE2650,
    PE4600,
    WAN_HOST,
)
from repro.net.topology import BackToBack, MultiFlow, ThroughSwitch, build_wan_path
from repro.tcp.connection import TcpConnection
from repro.sockets import SimSocket, connect
from repro.core.casestudy import CaseStudy
from repro.core.latencyreport import LatencyStudy
from repro.core.bottleneck import BottleneckStudy
from repro.core.wanrecord import WanRecordRun
from repro.analysis.experiments import experiment_ids, run_experiment

__version__ = "1.0.0"

__all__ = [
    "TuningConfig",
    "ReproError",
    "Environment",
    "Host",
    "HostSpec",
    "PE2650",
    "PE4600",
    "INTEL_E7505",
    "ITANIUM2",
    "WAN_HOST",
    "GBE_HOST",
    "BackToBack",
    "ThroughSwitch",
    "MultiFlow",
    "build_wan_path",
    "TcpConnection",
    "SimSocket",
    "connect",
    "CaseStudy",
    "LatencyStudy",
    "BottleneckStudy",
    "WanRecordRun",
    "run_experiment",
    "experiment_ids",
    "SweepRunner",
    "job_context",
    "ResultCache",
    "cache_context",
    "cache_stats",
    "clear_cache",
    "__version__",
]
