"""NTTCP: the paper's primary throughput tool.

NTTCP (a ttcp variant) "measures the time required to send a set number
of fixed-size packets".  :func:`nttcp_run` reproduces one such
measurement over an established :class:`~repro.tcp.connection.TcpConnection`;
:func:`nttcp_sweep` runs the paper's payload sweep (§3.3: 32768 writes
per point, payloads 128 B .. 16 KB — scaled down by default so a sweep
runs in seconds of wall-clock; the measured quantity is a rate, so the
count only sets averaging quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import MeasurementError
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection

__all__ = ["NttcpResult", "nttcp_run", "nttcp_sweep", "default_payloads"]

#: The paper's per-point write count.
PAPER_WRITE_COUNT = 32768

#: Scaled default: enough for a stable rate, ~16x faster to simulate.
DEFAULT_WRITE_COUNT = 2048


@dataclass(frozen=True)
class NttcpResult:
    """One NTTCP measurement point."""

    payload: int
    count: int
    bytes_delivered: int
    elapsed_s: float
    goodput_bps: float
    sender_load: float
    receiver_load: float
    retransmissions: int

    @property
    def goodput_gbps(self) -> float:
        """Goodput in Gb/s (the paper's y-axis unit is Mbit/s)."""
        return self.goodput_bps / 1e9

    @property
    def goodput_mbps(self) -> float:
        """Goodput in Mb/s."""
        return self.goodput_bps / 1e6


def nttcp_run(env: Environment, conn: TcpConnection, payload: int,
              count: int = DEFAULT_WRITE_COUNT) -> NttcpResult:
    """Run one fixed-count transfer to completion and measure it.

    Advances the simulation until every byte is delivered.
    """
    if payload <= 0 or count <= 0:
        raise MeasurementError("payload and count must be positive")
    total = payload * count
    src = conn.src_host
    dst = conn.dst_host
    src.cpu.reset_load_window()
    dst.cpu.reset_load_window()

    baseline = conn.receiver.bytes_delivered

    def app():
        yield from conn.send_stream(payload, count)
        yield from conn.wait_delivered(baseline + total)

    done = env.process(app(), name="nttcp")
    env.run(until=done)
    rx = conn.receiver
    if rx.first_data_time is None or rx.last_delivery_time is None:
        raise MeasurementError("transfer produced no deliveries")
    elapsed = rx.last_delivery_time - rx.first_data_time
    if elapsed <= 0:
        raise MeasurementError("transfer too short to time")
    return NttcpResult(
        payload=payload,
        count=count,
        bytes_delivered=total,
        elapsed_s=elapsed,
        goodput_bps=rx.bytes_delivered * 8.0 / elapsed,
        sender_load=src.cpu.load(),
        receiver_load=dst.cpu.load(),
        retransmissions=conn.sender.retransmitted,
    )


def default_payloads(mss: int, points: int = 24,
                     lo: int = 128, hi: int = 16384) -> List[int]:
    """A payload grid covering ``lo..hi`` that always includes the
    MSS-adjacent sizes where Fig. 3's dips live."""
    if points < 4:
        raise MeasurementError("need at least 4 sweep points")
    grid = {lo, hi}
    step = (hi - lo) / (points - 1)
    for i in range(points):
        grid.add(int(lo + i * step))
    # the interesting neighbourhood: around the MSS and just below
    for anchor in (mss // 2, mss - 1512, mss - 512, mss, mss + 52,
                   mss + mss // 2):
        if lo <= anchor <= hi:
            grid.add(anchor)
    return sorted(grid)


@dataclass(frozen=True)
class BidirectionalResult:
    """Simultaneous two-way transfer (the metric Myricom quotes for
    Myrinet's 3.9 Gb/s bidirectional figure in §3.5.4)."""

    forward: NttcpResult
    backward: NttcpResult

    @property
    def aggregate_bps(self) -> float:
        """Sum of both directions' goodputs."""
        return self.forward.goodput_bps + self.backward.goodput_bps

    @property
    def aggregate_gbps(self) -> float:
        """Aggregate in Gb/s."""
        return self.aggregate_bps / 1e9


def nttcp_bidirectional(env: Environment, forward: TcpConnection,
                        backward: TcpConnection, payload: int,
                        count: int = DEFAULT_WRITE_COUNT
                        ) -> BidirectionalResult:
    """Run two opposing fixed-count transfers simultaneously.

    Full-duplex 10GbE means the directions contend only for host
    resources (CPU, PCI-X), not the wire — the interesting question.
    """
    if payload <= 0 or count <= 0:
        raise MeasurementError("payload and count must be positive")
    total = payload * count

    def app(conn: TcpConnection):
        base = conn.receiver.bytes_delivered
        yield from conn.send_stream(payload, count)
        yield from conn.wait_delivered(base + total)

    p1 = env.process(app(forward), name="nttcp.fwd")
    p2 = env.process(app(backward), name="nttcp.bwd")
    env.run(until=p1)
    env.run(until=p2)

    def result(conn: TcpConnection) -> NttcpResult:
        rx = conn.receiver
        elapsed = rx.last_delivery_time - rx.first_data_time
        return NttcpResult(
            payload=payload, count=count, bytes_delivered=total,
            elapsed_s=elapsed, goodput_bps=total * 8.0 / elapsed,
            sender_load=conn.src_host.cpu.load(),
            receiver_load=conn.dst_host.cpu.load(),
            retransmissions=conn.sender.retransmitted)

    return BidirectionalResult(forward=result(forward),
                               backward=result(backward))


def nttcp_sweep(make_conn: Callable[[], "tuple[Environment, TcpConnection]"],
                payloads: Sequence[int],
                count: int = DEFAULT_WRITE_COUNT) -> List[NttcpResult]:
    """Sweep payload sizes, building a fresh topology per point
    (measurements must not share warmed-up TCP state).

    ``make_conn`` returns a fresh ``(env, connection)`` pair.
    """
    results: List[NttcpResult] = []
    for payload in payloads:
        env, conn = make_conn()
        results.append(nttcp_run(env, conn, payload, count))
    return results
