"""NetPipe: ping-pong latency measurement.

"To estimate the end-to-end latency between a pair of 10GbE adapters,
we use NetPipe to obtain an averaged round-trip time over several
single-byte ping-pong tests and then divide by two" (§3.2).

The pong direction needs its own TCP connection (NetPipe uses one
bidirectional socket; two unidirectional connections are equivalent in
this model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import MeasurementError
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection

__all__ = ["NetpipeResult", "netpipe_latency", "netpipe_sweep"]


@dataclass(frozen=True)
class NetpipeResult:
    """Latency at one payload size."""

    payload: int
    iterations: int
    rtt_s: float
    latency_s: float

    @property
    def latency_us(self) -> float:
        """One-way latency in microseconds (the Fig. 6/7 y-axis)."""
        return self.latency_s * 1e6


def netpipe_latency(env: Environment, forward: TcpConnection,
                    backward: TcpConnection, payload: int = 1,
                    iterations: int = 8) -> NetpipeResult:
    """Averaged ping-pong RTT / 2 at one payload size."""
    if payload <= 0:
        raise MeasurementError("payload must be positive")
    if iterations < 1:
        raise MeasurementError("need at least one iteration")
    rtts: List[float] = []

    def pinger():
        for _ in range(iterations):
            target = backward.receiver.bytes_delivered + payload
            t0 = env.now
            yield from forward.write(payload)
            # wait for the echo
            yield from backward.wait_delivered(target, poll_s=2e-7)
            rtts.append(env.now - t0)

    def ponger():
        delivered = 0
        for _ in range(iterations):
            delivered += payload
            yield from forward.wait_delivered(delivered, poll_s=2e-7)
            yield from backward.write(payload)

    env.process(ponger(), name="netpipe.pong")
    done = env.process(pinger(), name="netpipe.ping")
    env.run(until=done)
    if not rtts:
        raise MeasurementError("ping-pong produced no samples")
    # First iteration pays slow-start/cold costs; NetPipe averages the
    # steady repetitions.
    steady = rtts[1:] if len(rtts) > 1 else rtts
    rtt = float(np.mean(steady))
    return NetpipeResult(payload=payload, iterations=iterations,
                         rtt_s=rtt, latency_s=rtt / 2.0)


def netpipe_sweep(make_pair, payloads: Sequence[int],
                  iterations: int = 8) -> List[NetpipeResult]:
    """Latency across payload sizes (Fig. 6/7: 1 B .. 1024 B).

    ``make_pair`` returns a fresh ``(env, forward, backward)`` triple per
    point.
    """
    results: List[NetpipeResult] = []
    for payload in payloads:
        env, fwd, bwd = make_pair()
        results.append(netpipe_latency(env, fwd, bwd, payload, iterations))
    return results
