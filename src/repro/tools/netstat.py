"""netstat-style counter snapshots for hosts and connections.

The paper's debugging loop leans on kernel counters (``netstat -s``
style) alongside tcpdump and MAGNET.  :func:`snapshot_host` and
:func:`snapshot_connection` collect the simulator's equivalents into
flat dictionaries suitable for tables, assertions and diffing across a
run.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.hw.host import Host
from repro.tcp.connection import TcpConnection

__all__ = ["snapshot_host", "snapshot_connection", "diff_snapshots"]


def snapshot_host(host: Host) -> Dict[str, Any]:
    """Kernel/driver counters for one host."""
    snap: Dict[str, Any] = {
        "host": host.name,
        "cpu_load": round(host.cpu.load(), 4),
        "pcix_utilization": round(host.pcix.utilization(), 4),
        "pcix_bytes": host.pcix.bytes_moved,
        "alloc_live": host.allocator.stats.live,
        "alloc_total": host.allocator.stats.allocations,
    }
    for adapter in host.adapters:
        prefix = adapter.name
        snap[f"{prefix}.tx_frames"] = int(adapter.tx_frames.total)
        snap[f"{prefix}.rx_frames"] = int(adapter.rx_frames.total)
        snap[f"{prefix}.interrupts"] = int(adapter.interrupts.total)
        snap[f"{prefix}.tx_drops"] = int(adapter.tx_drops.total)
        snap[f"{prefix}.rx_drops"] = int(adapter.rx_drops.total)
        snap[f"{prefix}.txq_depth"] = adapter.txq.level
    return snap


def snapshot_connection(conn: TcpConnection) -> Dict[str, Any]:
    """TCP state/counters for one connection (``ss -i`` style)."""
    sender, receiver = conn.sender, conn.receiver
    return {
        "connection": conn.name,
        "mss": conn.mss,
        "snd_una": sender.snd_una,
        "snd_nxt": sender.snd_nxt,
        "bytes_in_flight": sender.bytes_in_flight,
        "cwnd_segments": sender.cwnd.cwnd_segments,
        "ssthresh": sender.cwnd.ssthresh,
        "rwnd_bytes": sender.rwnd_bytes,
        "srtt_us": (round(sender.srtt_s * 1e6, 1)
                    if sender.srtt_s is not None else None),
        "rto_ms": round(sender.rto_s * 1e3, 1),
        "segments_sent": sender.segments_sent,
        "retransmitted": sender.retransmitted,
        "fast_retransmits": sender.cwnd.fast_retransmits,
        "timeouts": sender.cwnd.timeouts,
        "acks_received": sender.acks_received,
        "rcv_nxt": receiver.rcv_nxt,
        "bytes_delivered": receiver.bytes_delivered,
        "out_of_order_held": len(receiver._ooo),
        "duplicates": receiver.duplicates,
        "acks_sent": receiver.acks_sent,
        "window_updates": receiver.window_updates,
        "advertised_window": receiver.window.current,
    }


def diff_snapshots(before: Dict[str, Any],
                   after: Dict[str, Any]) -> Dict[str, Any]:
    """Numeric deltas between two snapshots (non-numeric keys kept from
    ``after``)."""
    out: Dict[str, Any] = {}
    for key, new in after.items():
        old = before.get(key)
        if isinstance(new, (int, float)) and isinstance(old, (int, float)):
            out[key] = new - old
        else:
            out[key] = new
    return out
