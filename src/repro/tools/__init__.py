"""Measurement tools: simulated analogues of everything §3.2 names.

* :mod:`repro.tools.nttcp` — fixed-count payload-sweep throughput (the
  paper's primary tool).
* :mod:`repro.tools.iperf` — fixed-duration stream throughput.
* :mod:`repro.tools.netpipe` — ping-pong latency.
* :mod:`repro.tools.stream_bench` — memory bandwidth.
* :mod:`repro.tools.loadavg` — ``/proc/loadavg`` sampling.
* :mod:`repro.tools.magnet` — kernel event tracing and path profiling.
* :mod:`repro.tools.tcpdump` — wire-level capture.
"""

from repro.tools.nttcp import NttcpResult, nttcp_run, nttcp_sweep, nttcp_bidirectional
from repro.tools.iperf import IperfResult, iperf_run
from repro.tools.netperf import (
    NetperfRRResult,
    NetperfStreamResult,
    netperf_tcp_rr,
    netperf_tcp_stream,
)
from repro.tools.netpipe import NetpipeResult, netpipe_latency, netpipe_sweep
from repro.tools.stream_bench import stream_bench
from repro.tools.loadavg import LoadSampler
from repro.tools.magnet import Magnet
from repro.tools.tcpdump import Tcpdump
from repro.tools.netstat import snapshot_host, snapshot_connection, diff_snapshots
from repro.tools.ethtool import Ethtool

__all__ = [
    "NttcpResult",
    "nttcp_run",
    "nttcp_sweep",
    "nttcp_bidirectional",
    "IperfResult",
    "iperf_run",
    "NetperfStreamResult",
    "NetperfRRResult",
    "netperf_tcp_stream",
    "netperf_tcp_rr",
    "NetpipeResult",
    "netpipe_latency",
    "netpipe_sweep",
    "stream_bench",
    "LoadSampler",
    "Magnet",
    "Tcpdump",
    "snapshot_host",
    "snapshot_connection",
    "diff_snapshots",
    "Ethtool",
]
