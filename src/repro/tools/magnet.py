"""MAGNET: kernel-path tracing and profiling (§3.2).

MAGNET "allowed us to trace and profile the paths taken by individual
packets through the TCP stack with negligible effect on network
performance.  By observing a random sampling of packets, we were able to
quantify how many packets take each possible path, the cost of each
path, and the conditions necessary for a packet to take a faster path."

The simulated MAGNET rides on the host's
:class:`~repro.sim.trace.TraceBuffer`: enable it, run traffic, then ask
for per-path packet counts and per-packet latencies between
instrumentation points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.hw.host import Host

__all__ = ["Magnet", "PathProfile"]


@dataclass(frozen=True)
class PathProfile:
    """Latency statistics between two instrumentation points.

    ``requeued`` counts subjects that re-entered ``src_point`` before
    reaching ``dst_point`` (retransmitted packets: the first entry time
    is kept, later re-entries are counted here, not silently ignored).
    ``unmatched`` counts subjects that entered but never reached
    ``dst_point`` (lost or still in flight when tracing stopped).
    """

    src_point: str
    dst_point: str
    samples: int
    mean_s: float
    p50_s: float
    p99_s: float
    requeued: int = 0
    unmatched: int = 0

    @property
    def mean_us(self) -> float:
        """Mean path latency in microseconds."""
        return self.mean_s * 1e6


class Magnet:
    """Attach to one or more hosts and profile packet paths."""

    def __init__(self, *hosts: Host):
        if not hosts:
            raise MeasurementError("magnet needs at least one host")
        self.hosts = hosts

    def start(self) -> None:
        """Enable tracing on all attached hosts."""
        for host in self.hosts:
            host.trace.enabled = True

    def stop(self) -> None:
        """Disable tracing."""
        for host in self.hosts:
            host.trace.enabled = False

    def clear(self) -> None:
        """Discard recorded events."""
        for host in self.hosts:
            host.trace.clear()

    # -- analyses --------------------------------------------------------------
    def path_histogram(self) -> Dict[str, int]:
        """How many events each instrumentation point saw."""
        total: Dict[str, int] = {}
        for host in self.hosts:
            for point, n in host.trace.points().items():
                total[point] = total.get(point, 0) + n
        return total

    def profile(self, src_point: str, dst_point: str) -> PathProfile:
        """Per-packet latency from ``src_point`` to ``dst_point``,
        matched by packet identity across all attached hosts."""
        first: Dict[object, float] = {}
        latencies: List[float] = []
        requeued = 0
        events = []
        for host in self.hosts:
            events.extend(host.trace.select())
        events.sort(key=lambda e: e.time)
        for ev in events:
            if ev.point == src_point:
                if ev.subject in first:
                    # Retransmission: the subject re-entered the path
                    # before completing it.  Keep the first entry time
                    # (the packet's true path start) and count it.
                    requeued += 1
                else:
                    first[ev.subject] = ev.time
            elif ev.point == dst_point:
                t0 = first.pop(ev.subject, None)
                if t0 is not None:
                    latencies.append(ev.time - t0)
        if not latencies:
            raise MeasurementError(
                f"no packets traversed {src_point} -> {dst_point}")
        arr = np.asarray(latencies)
        return PathProfile(
            src_point=src_point, dst_point=dst_point,
            samples=len(arr),
            mean_s=float(arr.mean()),
            p50_s=float(np.percentile(arr, 50)),
            p99_s=float(np.percentile(arr, 99)),
            requeued=requeued,
            unmatched=len(first),
        )
