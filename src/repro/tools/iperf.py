"""Iperf: fixed-duration stream throughput.

"Iperf measures the amount of data sent over a consistent stream in a
set time" (§3.2) — the complement of NTTCP's fixed-count measurement.
The paper notes the two typically agree within 2-3%; a test asserts the
same property of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection

__all__ = ["IperfResult", "iperf_run"]


@dataclass(frozen=True)
class IperfResult:
    """One Iperf measurement."""

    duration_s: float
    bytes_delivered: int
    goodput_bps: float

    @property
    def goodput_gbps(self) -> float:
        """Goodput in Gb/s."""
        return self.goodput_bps / 1e9


def iperf_run(env: Environment, conn: TcpConnection, duration_s: float,
              write_size: int = 65536,
              warmup_s: float = 0.0) -> IperfResult:
    """Stream continuously for ``duration_s`` (after ``warmup_s``) and
    report the delivered-byte rate over the timed window."""
    if duration_s <= 0:
        raise MeasurementError("duration must be positive")
    if write_size <= 0:
        raise MeasurementError("write size must be positive")

    stop = {"flag": False}

    def source():
        while not stop["flag"]:
            yield from conn.write(write_size)

    env.process(source(), name="iperf.src")
    env.run(until=env.now + warmup_s)
    start_bytes = conn.receiver.bytes_delivered
    start_time = env.now
    env.run(until=env.now + duration_s)
    delivered = conn.receiver.bytes_delivered - start_bytes
    elapsed = env.now - start_time
    stop["flag"] = True
    if delivered <= 0:
        raise MeasurementError("iperf window saw no deliveries")
    return IperfResult(duration_s=elapsed, bytes_delivered=delivered,
                       goodput_bps=delivered * 8.0 / elapsed)
