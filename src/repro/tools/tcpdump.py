"""tcpdump: wire-level capture (§3.2).

Attach a :class:`Tcpdump` to any link to record every delivered frame —
time, kind, sequence range, ack and advertised window — the data the
paper used (together with MAGNET) to diagnose the inefficient window
behaviour of §3.5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.oskernel.skbuff import SkBuff
from repro.sim.engine import Environment

__all__ = ["Tcpdump", "CaptureRecord"]


@dataclass(frozen=True)
class CaptureRecord:
    """One captured frame."""

    time: float
    kind: str
    seq: int
    end_seq: int
    ack: int
    payload: int
    window: Optional[int]

    def summary(self) -> str:
        """A tcpdump-style one-liner."""
        if self.kind == "ack":
            return (f"{self.time * 1e6:12.1f}us ack {self.ack}"
                    f" win {self.window}")
        return (f"{self.time * 1e6:12.1f}us {self.kind}"
                f" {self.seq}:{self.end_seq}({self.payload})")


class Tcpdump:
    """Passive tap on a link: records then forwards every frame."""

    def __init__(self, env: Environment, link, max_frames: int = 1_000_000):
        self.env = env
        self.records: List[CaptureRecord] = []
        self.max_frames = max_frames
        self.dropped = 0
        self._inner = link.sink
        if self._inner is None:
            raise ValueError("tcpdump must attach after the link is connected")
        link.connect(self)

    def receive_frame(self, skb: SkBuff) -> None:
        """Record and forward."""
        if len(self.records) < self.max_frames:
            self.records.append(CaptureRecord(
                time=self.env.now, kind=skb.kind, seq=skb.seq,
                end_seq=skb.end_seq, ack=skb.ack, payload=skb.payload,
                window=skb.meta.get("win")))
        else:
            self.dropped += 1
        self._inner.receive_frame(skb)

    def __len__(self) -> int:
        return len(self.records)

    def acks(self) -> List[CaptureRecord]:
        """Only the ACK frames."""
        return [r for r in self.records if r.kind == "ack"]

    def data(self) -> List[CaptureRecord]:
        """Only the data frames."""
        return [r for r in self.records if r.kind == "data"]

    def advertised_windows(self) -> List[int]:
        """The advertised-window series (the §3.5.1 evidence)."""
        return [r.window for r in self.acks() if r.window is not None]
