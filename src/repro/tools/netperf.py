"""netperf: the third throughput tool §3.2 name-checks.

"We use two tools to measure network throughput — NTTCP and Iperf —
and note that the experimental results from these two tools correspond
to another oft-used tool called netperf."

The simulated netperf offers its two classic tests:

* ``TCP_STREAM`` — bulk throughput over a timed window (equivalent to
  Iperf here, and the correspondence is asserted by a test), and
* ``TCP_RR`` — request/response transactions per second, the
  latency-facing metric (1/RTT for 1-byte transactions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.sim.engine import Environment
from repro.tcp.connection import TcpConnection
from repro.tools.iperf import iperf_run
from repro.tools.netpipe import netpipe_latency

__all__ = ["NetperfStreamResult", "NetperfRRResult",
           "netperf_tcp_stream", "netperf_tcp_rr"]


@dataclass(frozen=True)
class NetperfStreamResult:
    """TCP_STREAM outcome."""

    duration_s: float
    throughput_bps: float

    @property
    def throughput_gbps(self) -> float:
        """Throughput in Gb/s."""
        return self.throughput_bps / 1e9


@dataclass(frozen=True)
class NetperfRRResult:
    """TCP_RR outcome."""

    request_bytes: int
    response_bytes: int
    transactions_per_sec: float

    @property
    def mean_rtt_s(self) -> float:
        """Mean transaction round-trip time."""
        return 1.0 / self.transactions_per_sec


def netperf_tcp_stream(env: Environment, conn: TcpConnection,
                       duration_s: float = 0.01,
                       send_size: int = 65536) -> NetperfStreamResult:
    """Bulk-throughput test (TCP_STREAM)."""
    result = iperf_run(env, conn, duration_s=duration_s,
                       write_size=send_size, warmup_s=duration_s / 2)
    return NetperfStreamResult(duration_s=result.duration_s,
                               throughput_bps=result.goodput_bps)


def netperf_tcp_rr(env: Environment, forward: TcpConnection,
                   backward: TcpConnection,
                   request_bytes: int = 1, response_bytes: int = 1,
                   transactions: int = 8) -> NetperfRRResult:
    """Request/response test (TCP_RR).

    Uses the same ping-pong machinery as NetPipe; for asymmetric
    request/response sizes the two directions carry different payloads.
    """
    if request_bytes <= 0 or response_bytes <= 0:
        raise MeasurementError("request and response sizes must be positive")
    if transactions < 1:
        raise MeasurementError("need at least one transaction")
    if request_bytes == response_bytes:
        result = netpipe_latency(env, forward, backward,
                                 payload=request_bytes,
                                 iterations=transactions)
        return NetperfRRResult(request_bytes=request_bytes,
                               response_bytes=response_bytes,
                               transactions_per_sec=1.0 / result.rtt_s)

    rtts = []

    def requester():
        for _ in range(transactions):
            target = backward.receiver.bytes_delivered + response_bytes
            t0 = env.now
            yield from forward.write(request_bytes)
            yield from backward.wait_delivered(target, poll_s=2e-7)
            rtts.append(env.now - t0)

    def responder():
        seen = 0
        for _ in range(transactions):
            seen += request_bytes
            yield from forward.wait_delivered(seen, poll_s=2e-7)
            yield from backward.write(response_bytes)

    env.process(responder(), name="netperf.rr.resp")
    done = env.process(requester(), name="netperf.rr.req")
    env.run(until=done)
    steady = rtts[1:] if len(rtts) > 1 else rtts
    mean_rtt = sum(steady) / len(steady)
    return NetperfRRResult(request_bytes=request_bytes,
                           response_bytes=response_bytes,
                           transactions_per_sec=1.0 / mean_rtt)
