"""STREAM: memory-bandwidth measurement (§3.2, §3.5.2).

The paper uses STREAM to rule memory bandwidth out as the bottleneck:
the PE4600 reports 12.8 Gb/s (≈50% above the PE2650) yet shows no extra
network throughput, and the Intel E7505 systems measure within a few
percent of the PE2650.  The simulated measurement returns the platform's
calibrated copy bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import MemorySubsystem
from repro.hw.presets import HostSpec

__all__ = ["StreamResult", "stream_bench"]


@dataclass(frozen=True)
class StreamResult:
    """STREAM copy figure for one platform."""

    host: str
    copy_bps: float
    theoretical_bps: float

    @property
    def copy_gbps(self) -> float:
        """Copy bandwidth in Gb/s (the unit §3.5.2 quotes)."""
        return self.copy_bps / 1e9

    @property
    def efficiency(self) -> float:
        """Measured / theoretical."""
        return self.copy_bps / self.theoretical_bps


def stream_bench(spec: HostSpec) -> StreamResult:
    """Run the (simulated) STREAM copy benchmark on a platform."""
    mem = MemorySubsystem(spec)
    return StreamResult(host=spec.name,
                        copy_bps=mem.stream_benchmark(),
                        theoretical_bps=mem.theoretical_bps)
