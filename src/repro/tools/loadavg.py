"""/proc/loadavg sampling (§3.2).

"To estimate the CPU load across our throughput tests, we sample
/proc/loadavg at five- to ten-second intervals."  The sampler records
the host's network-CPU busy fraction at a fixed simulated interval; the
figures the paper quotes (0.9 for 1500-byte MTUs, 0.4 for 9000) are the
steady-state values.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MeasurementError
from repro.hw.host import Host
from repro.sim.engine import Environment

__all__ = ["LoadSampler"]


class LoadSampler:
    """Samples a host's CPU load on a fixed simulated period."""

    def __init__(self, env: Environment, host: Host,
                 interval_s: float = 0.005):
        if interval_s <= 0:
            raise MeasurementError("sampling interval must be positive")
        self.env = env
        self.host = host
        self.interval_s = interval_s
        self.samples: List[float] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self.host.cpu.reset_load_window()
        self.env.process(self._sample_loop(), name="loadavg")

    def stop(self) -> None:
        """Stop after the current interval."""
        self._running = False

    def _sample_loop(self):
        while self._running:
            yield self.env.timeout(self.interval_s)
            self.samples.append(self.host.cpu.load())
            self.host.cpu.reset_load_window()

    def mean_load(self, skip: int = 1) -> float:
        """Average of the samples, skipping ``skip`` warm-up readings."""
        usable = self.samples[skip:] if len(self.samples) > skip else self.samples
        if not usable:
            raise MeasurementError("no load samples recorded")
        return sum(usable) / len(usable)
