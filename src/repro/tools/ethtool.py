"""ethtool-style adapter configuration (the driver half of the recipe).

The paper's tuning recipe splits between ``/proc/sys`` (covered by
:mod:`repro.oskernel.sysctl`) and driver/adapter controls — interrupt
coalescing, offloads, the MMRBC register — which administrators set with
``ethtool``/``setpci``.  :class:`Ethtool` mirrors that interface so the
full §3.3 recipe can be written the way an operator would type it.

    >>> et = Ethtool()
    >>> et.run("ethtool -C eth1 rx-usecs 0")
    >>> et.run("ethtool -K eth1 tso on")
    >>> et.run("setpci -d 8086:1048 e6.b=2e")   # MMRBC -> 4096
    >>> cfg = et.apply(TuningConfig.stock(9000))
"""

from __future__ import annotations

import shlex
from typing import Any, Dict

from repro.config import TuningConfig
from repro.errors import ConfigError

__all__ = ["Ethtool"]

#: MMRBC field encoding in the PCI-X command register (bits 2-3 of the
#: byte at 0xe6 for the 82597EX): 0->512, 1->1024, 2->2048, 3->4096.
_MMRBC_BY_FIELD = {0: 512, 1: 1024, 2: 2048, 3: 4096}

_OFFLOAD_FLAGS = {
    "tso": "tso",
    "rx": "checksum_offload",   # rx checksumming
    "sack": "sack",             # convenience alias (really a sysctl)
}


class Ethtool:
    """Accumulates ethtool/setpci commands; folds them into a config."""

    def __init__(self) -> None:
        self._changes: Dict[str, Any] = {}
        self.history: list = []

    # -- command-line front end ------------------------------------------------
    def run(self, command: str) -> None:
        """Parse and stage one ``ethtool ...`` or ``setpci ...`` line."""
        parts = shlex.split(command)
        if not parts:
            raise ConfigError("empty command")
        tool = parts[0]
        if tool == "ethtool":
            self._run_ethtool(parts[1:])
        elif tool == "setpci":
            self._run_setpci(parts[1:])
        else:
            raise ConfigError(f"unknown tool {tool!r}; expected "
                              "'ethtool' or 'setpci'")
        self.history.append(command)

    def _run_ethtool(self, args) -> None:
        if len(args) < 2:
            raise ConfigError("ethtool needs a mode flag and a device")
        mode = args[0]
        if mode == "-C":  # coalescing
            params = args[2:]
            if len(params) % 2 != 0 or not params:
                raise ConfigError("ethtool -C takes key/value pairs")
            for key, value in zip(params[::2], params[1::2]):
                if key == "rx-usecs":
                    self._changes["interrupt_coalescing_us"] = float(value)
                elif key == "adaptive-rx":
                    self._changes["adaptive_coalescing"] = \
                        self._parse_onoff(value)
                else:
                    raise ConfigError(f"unsupported coalescing key {key!r}")
        elif mode == "-K":  # offloads
            params = args[2:]
            if len(params) % 2 != 0 or not params:
                raise ConfigError("ethtool -K takes flag on/off pairs")
            for flag, value in zip(params[::2], params[1::2]):
                field = _OFFLOAD_FLAGS.get(flag)
                if field is None:
                    raise ConfigError(f"unsupported offload flag {flag!r}")
                self._changes[field] = self._parse_onoff(value)
        else:
            raise ConfigError(f"unsupported ethtool mode {mode!r}")

    def _run_setpci(self, args) -> None:
        # accept: setpci [-d vendor:device] e6.b=<hex>
        assignment = args[-1]
        if "=" not in assignment or not assignment.startswith("e6.b"):
            raise ConfigError(
                "only the MMRBC register (e6.b=<hex>) is modelled")
        try:
            raw = int(assignment.split("=", 1)[1], 16)
        except ValueError as exc:
            raise ConfigError(f"bad register value in {assignment!r}") from exc
        field = (raw >> 2) & 0x3
        self._changes["mmrbc"] = _MMRBC_BY_FIELD[field]

    @staticmethod
    def _parse_onoff(value: str) -> bool:
        if value == "on":
            return True
        if value == "off":
            return False
        raise ConfigError(f"expected on/off, got {value!r}")

    # -- application -----------------------------------------------------------
    def apply(self, config: TuningConfig) -> TuningConfig:
        """``config`` with every staged change applied (validated)."""
        if not self._changes:
            return config
        return config.replace(**self._changes)
